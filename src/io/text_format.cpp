#include "io/text_format.hpp"

#include <cmath>
#include <cstdint>
#include <fstream>
#include <functional>
#include <limits>
#include <sstream>
#include <vector>

#include "io/atomic_file.hpp"
#include "obs/histogram.hpp"
#include "obs/quality.hpp"
#include "obs/timeseries.hpp"

namespace tdmd::io {

namespace {

/// Tokenizing line reader that skips blanks/comments and tracks line
/// numbers for diagnostics.
class LineReader {
 public:
  explicit LineReader(std::istream& is) : is_(is) {}

  /// Next meaningful line split into whitespace tokens; false at EOF.
  bool Next(std::vector<std::string>& tokens) {
    std::string line;
    while (std::getline(is_, line)) {
      ++line_number_;
      // Strip comments.
      if (auto hash = line.find('#'); hash != std::string::npos) {
        line.resize(hash);
      }
      std::istringstream ss(line);
      tokens.clear();
      std::string token;
      while (ss >> token) tokens.push_back(std::move(token));
      if (!tokens.empty()) return true;
    }
    return false;
  }

  int line_number() const { return line_number_; }

 private:
  std::istream& is_;
  int line_number_ = 0;
};

std::string AtLine(int line, const std::string& message) {
  std::ostringstream oss;
  oss << "line " << line << ": " << message;
  return oss.str();
}

bool ParseInt(const std::string& token, std::int64_t& out) {
  try {
    std::size_t consumed = 0;
    out = std::stoll(token, &consumed);
    return consumed == token.size();
  } catch (const std::exception&) {
    return false;
  }
}

bool ParseDouble(const std::string& token, double& out) {
  try {
    std::size_t consumed = 0;
    out = std::stod(token, &consumed);
    return consumed == token.size();
  } catch (const std::exception&) {
    return false;
  }
}

/// Vertex ids parse as int64 but are stored as VertexId (int32); an
/// unchecked cast would silently wrap, so every reader bounds ids here.
bool FitsVertexId(std::int64_t v) {
  return v >= 0 && v <= std::numeric_limits<VertexId>::max();
}

/// Declared counts are untrusted input: reserve at most this many slots
/// up front so an oversized count fails at the first missing record
/// instead of allocating gigabytes.
template <typename Count>
std::size_t CappedCount(Count count) {
  const auto wide = static_cast<std::uint64_t>(count);
  return static_cast<std::size_t>(wide < 65536 ? wide : 65536);
}

}  // namespace

// --- Writers ----------------------------------------------------------

void WriteDigraph(std::ostream& os, const graph::Digraph& g) {
  os << "digraph " << g.num_vertices() << '\n';
  for (EdgeId e = 0; e < g.num_arcs(); ++e) {
    const graph::Arc& a = g.arc(e);
    os << "arc " << a.tail << ' ' << a.head << '\n';
  }
}

void WriteTree(std::ostream& os, const graph::Tree& tree) {
  os << "tree " << tree.num_vertices() << '\n';
  for (VertexId v = 0; v < tree.num_vertices(); ++v) {
    if (tree.Parent(v) != kInvalidVertex) {
      os << "parent " << v << ' ' << tree.Parent(v) << '\n';
    }
  }
}

void WriteFlows(std::ostream& os, const traffic::FlowSet& flows) {
  os << "flows " << flows.size() << '\n';
  for (const traffic::Flow& f : flows) {
    os << "flow " << f.rate;
    for (VertexId v : f.path.vertices) os << ' ' << v;
    os << '\n';
  }
}

void WriteInstance(std::ostream& os, const core::Instance& instance) {
  os << "tdmd-instance v1\n";
  os << "lambda " << instance.lambda() << '\n';
  WriteDigraph(os, instance.network());
  WriteFlows(os, instance.flows());
}

void WriteDeployment(std::ostream& os, const core::Deployment& deployment) {
  os << "deployment\n";
  for (VertexId v : deployment.SortedVertices()) {
    os << "box " << v << '\n';
  }
}

void WriteEngineCheckpoint(std::ostream& os,
                           const engine::EngineCheckpoint& checkpoint) {
  WriteEngineCheckpoint(os, checkpoint, EngineCheckpointWriteOptions{});
}

void WriteEngineCheckpoint(std::ostream& os,
                           const engine::EngineCheckpoint& checkpoint,
                           const EngineCheckpointWriteOptions& options) {
  os << "engine-checkpoint v1\n";
  os << "epoch " << checkpoint.epoch << '\n';
  os << "snapshot-version " << checkpoint.snapshot_version << '\n';
  os << "mode " << engine::EngineModeName(checkpoint.mode) << '\n';
  os << "consecutive-failures " << checkpoint.consecutive_failures << '\n';
  os << "epochs-since-probe " << checkpoint.epochs_since_probe << '\n';
  os << "pending-churn " << checkpoint.pending_churn << '\n';
  os << "k " << checkpoint.k << '\n';
  // Hexfloat so the incrementally maintained doubles round-trip bit-exactly
  // (decimal shortest-round-trip would need max_digits10 and is easier to
  // get subtly wrong).
  os << "lambda " << std::hexfloat << checkpoint.lambda << std::defaultfloat
     << '\n';
  os << "num-vertices " << checkpoint.num_vertices << '\n';
  os << "bandwidth " << std::hexfloat << checkpoint.maintained_bandwidth
     << std::defaultfloat << '\n';
  os << "feasible " << (checkpoint.maintained_feasible ? 1 : 0) << '\n';
#define TDMD_WRITE_COUNTER(field) \
  os << "counter " #field " " << checkpoint.stats.field << '\n';
  TDMD_ENGINE_STATS_COUNTERS(TDMD_WRITE_COUNTER)
#undef TDMD_WRITE_COUNTER
  os << "deployment " << checkpoint.deployment.size() << '\n';
  for (VertexId v : checkpoint.deployment) os << "box " << v << '\n';
  os << "uncovered " << checkpoint.uncovered.size() << '\n';
  for (engine::FlowTicket t : checkpoint.uncovered) {
    os << "ticket " << t << '\n';
  }
  os << "flows " << checkpoint.active_flows.size() << '\n';
  for (const engine::EngineCheckpoint::ActiveFlow& af :
       checkpoint.active_flows) {
    os << "flow " << af.ticket << ' ' << af.flow.rate;
    for (VertexId v : af.flow.path.vertices) os << ' ' << v;
    os << '\n';
  }
  os << "free-slots " << checkpoint.free_slots.size() << '\n';
  for (engine::FlowTicket t : checkpoint.free_slots) {
    os << "free " << t << '\n';
  }
  if (options.include_histograms) {
    // Optional section (readers accept records that end right here):
    // sparse nonzero buckets ascending by index, totals up front.
    const auto write_histogram = [&os](const char* name,
                                       const obs::HistogramSnapshot& h) {
      os << "histogram " << name << ' ' << h.count << ' ' << h.sum << ' '
         << h.min << ' ' << h.max << ' ' << h.buckets.size() << '\n';
      for (const auto& [index, bucket_count] : h.buckets) {
        os << "bucket " << index << ' ' << bucket_count << '\n';
      }
    };
    os << "histograms 4\n";
    write_histogram("patch", checkpoint.patch_histogram);
    write_histogram("resolve", checkpoint.resolve_histogram);
    write_histogram("index-delta", checkpoint.index_delta_histogram);
    write_histogram("greedy-round", checkpoint.greedy_round_histogram);
  }
  if (options.include_quality && checkpoint.has_quality) {
    // Optional quality-observability section.  Samples serialize only
    // their primaries (hexfloat, bit-exact); the reader re-derives
    // decrement/ratio/margin via obs::DeriveQualityFields so writer and
    // restorer share one arithmetic.
    const auto write_attr = [&os](const obs::VertexAttribution& attr) {
      os << "qv " << attr.vertex << ' ' << std::hexfloat
         << attr.marginal_decrement << std::defaultfloat << '\n';
    };
    os << "quality v1\n";
    os << "qbound " << (checkpoint.quality_tracker.cert_valid ? 1 : 0)
       << ' ' << std::hexfloat << checkpoint.quality_tracker.cert_bound
       << std::defaultfloat << '\n';
    os << "qadoption-age "
       << checkpoint.quality_tracker.epochs_since_adoption << '\n';
    os << "qattr " << checkpoint.quality_attribution.size() << '\n';
    for (const obs::VertexAttribution& attr :
         checkpoint.quality_attribution) {
      write_attr(attr);
    }
    const obs::QualityTimelineSnapshot& q = checkpoint.quality;
    os << "qdetector " << std::hexfloat << q.ewma << std::defaultfloat
       << ' ' << (q.ewma_primed ? 1 : 0) << ' ' << std::hexfloat << q.cusum
       << std::defaultfloat << ' ' << q.active_alerts << ' '
       << q.samples_total << ' ' << q.alerts_raised_total << ' '
       << q.alerts_cleared_total << '\n';
    os << "qsamples " << q.samples.size() << '\n';
    for (const obs::QualitySample& s : q.samples) {
      os << "qsample " << s.epoch << ' ' << s.version << ' ' << s.mode
         << ' ' << (s.feasible ? 1 : 0) << ' ' << s.deployed << ' '
         << s.budget << ' ' << s.churn_moves << ' '
         << s.epochs_since_adoption << ' ' << (s.certified ? 1 : 0) << ' '
         << std::hexfloat << s.bandwidth << ' ' << s.unprocessed << ' '
         << s.opt_bound << std::defaultfloat << ' ' << s.attribution.size()
         << '\n';
      for (const obs::VertexAttribution& attr : s.attribution) {
        write_attr(attr);
      }
    }
    os << "qalerts " << q.alerts.size() << '\n';
    for (const obs::QualityAlert& a : q.alerts) {
      os << "qalert " << static_cast<std::uint32_t>(a.kind) << ' '
         << (a.raised ? 1 : 0) << ' ' << a.epoch << ' ' << std::hexfloat
         << a.value << ' ' << a.threshold << std::defaultfloat << '\n';
    }
    os << "end quality\n";
  }
  os << "end engine-checkpoint\n";
}

// --- Readers -----------------------------------------------------------

namespace {

/// Shared body for digraph parsing once the header tokens are in hand.
Parsed<graph::Digraph> ReadDigraphBody(LineReader& reader,
                                       const std::vector<std::string>& header,
                                       std::vector<std::string>& tokens,
                                       bool& pending_tokens) {
  Parsed<graph::Digraph> result;
  std::int64_t n = 0;
  if (header.size() != 2 || header[0] != "digraph" ||
      !ParseInt(header[1], n) || n < 0 || !FitsVertexId(n)) {
    result.error = AtLine(reader.line_number(),
                          "expected 'digraph <num_vertices>'");
    return result;
  }
  graph::DigraphBuilder builder(static_cast<VertexId>(n));
  pending_tokens = false;
  while (reader.Next(tokens)) {
    if (tokens[0] != "arc") {
      pending_tokens = true;  // hand the line back to the caller
      break;
    }
    std::int64_t tail = 0, head = 0;
    if (tokens.size() != 3 || !ParseInt(tokens[1], tail) ||
        !ParseInt(tokens[2], head) || tail < 0 || tail >= n || head < 0 ||
        head >= n) {
      result.error =
          AtLine(reader.line_number(), "malformed 'arc <tail> <head>'");
      return result;
    }
    builder.AddArc(static_cast<VertexId>(tail),
                   static_cast<VertexId>(head));
  }
  result.value = builder.Build();
  return result;
}

Parsed<traffic::FlowSet> ReadFlowsBody(LineReader& reader,
                                       const std::vector<std::string>& header,
                                       std::vector<std::string>& tokens) {
  Parsed<traffic::FlowSet> result;
  std::int64_t count = 0;
  if (header.size() != 2 || header[0] != "flows" ||
      !ParseInt(header[1], count) || count < 0) {
    result.error =
        AtLine(reader.line_number(), "expected 'flows <count>'");
    return result;
  }
  traffic::FlowSet flows;
  flows.reserve(CappedCount(count));
  for (std::int64_t i = 0; i < count; ++i) {
    if (!reader.Next(tokens) || tokens[0] != "flow" || tokens.size() < 3) {
      result.error = AtLine(reader.line_number(),
                            "expected 'flow <rate> <v0> ... <vk>'");
      return result;
    }
    traffic::Flow f;
    std::int64_t rate = 0;
    if (!ParseInt(tokens[1], rate) || rate <= 0) {
      result.error = AtLine(reader.line_number(), "flow rate must be a "
                                                  "positive integer");
      return result;
    }
    f.rate = rate;
    for (std::size_t t = 2; t < tokens.size(); ++t) {
      std::int64_t v = 0;
      if (!ParseInt(tokens[t], v) || !FitsVertexId(v)) {
        result.error =
            AtLine(reader.line_number(), "malformed path vertex");
        return result;
      }
      f.path.vertices.push_back(static_cast<VertexId>(v));
    }
    f.src = f.path.vertices.front();
    f.dst = f.path.vertices.back();
    flows.push_back(std::move(f));
  }
  result.value = std::move(flows);
  return result;
}

}  // namespace

Parsed<graph::Digraph> ReadDigraph(std::istream& is) {
  LineReader reader(is);
  std::vector<std::string> tokens;
  if (!reader.Next(tokens)) {
    return {std::nullopt, "empty input, expected 'digraph'"};
  }
  std::vector<std::string> scratch;
  bool pending = false;
  return ReadDigraphBody(reader, tokens, scratch, pending);
}

Parsed<graph::Tree> ReadTree(std::istream& is) {
  Parsed<graph::Tree> result;
  LineReader reader(is);
  std::vector<std::string> tokens;
  if (!reader.Next(tokens) || tokens.size() != 2 || tokens[0] != "tree") {
    result.error = AtLine(reader.line_number(),
                          "expected 'tree <num_vertices>'");
    return result;
  }
  std::int64_t n = 0;
  if (!ParseInt(tokens[1], n) || n <= 0 || !FitsVertexId(n)) {
    result.error = AtLine(reader.line_number(), "bad vertex count");
    return result;
  }
  std::vector<VertexId> parent(static_cast<std::size_t>(n),
                               kInvalidVertex);
  std::vector<char> assigned(static_cast<std::size_t>(n), 0);
  while (reader.Next(tokens)) {
    std::int64_t v = 0, p = 0;
    if (tokens[0] != "parent" || tokens.size() != 3 ||
        !ParseInt(tokens[1], v) || !ParseInt(tokens[2], p) || v < 0 ||
        v >= n || p < 0 || p >= n) {
      result.error =
          AtLine(reader.line_number(), "malformed 'parent <v> <p>'");
      return result;
    }
    if (assigned[static_cast<std::size_t>(v)]) {
      result.error = AtLine(reader.line_number(),
                            "duplicate parent record for vertex");
      return result;
    }
    assigned[static_cast<std::size_t>(v)] = 1;
    parent[static_cast<std::size_t>(v)] = static_cast<VertexId>(p);
  }
  // Tree's constructor validates root count and acyclicity but aborts on
  // violation; pre-check here to return a parse error instead.
  int roots = 0;
  for (std::size_t v = 0; v < parent.size(); ++v) {
    if (parent[v] == kInvalidVertex) ++roots;
  }
  if (roots != 1) {
    result.error = "tree must have exactly one root (vertex with no "
                   "'parent' record)";
    return result;
  }
  // Cycle pre-check via parent-chain walking with a visit budget.
  for (std::size_t v = 0; v < parent.size(); ++v) {
    VertexId cursor = static_cast<VertexId>(v);
    for (std::int64_t steps = 0; cursor != kInvalidVertex; ++steps) {
      if (steps > n) {
        result.error = "parent records contain a cycle";
        return result;
      }
      cursor = parent[static_cast<std::size_t>(cursor)];
    }
  }
  result.value = graph::Tree(std::move(parent));
  return result;
}

Parsed<traffic::FlowSet> ReadFlows(std::istream& is) {
  LineReader reader(is);
  std::vector<std::string> tokens;
  if (!reader.Next(tokens)) {
    return {std::nullopt, "empty input, expected 'flows'"};
  }
  std::vector<std::string> scratch;
  return ReadFlowsBody(reader, tokens, scratch);
}

Parsed<core::Instance> ReadInstance(std::istream& is) {
  Parsed<core::Instance> result;
  LineReader reader(is);
  std::vector<std::string> tokens;

  if (!reader.Next(tokens) || tokens.size() != 2 ||
      tokens[0] != "tdmd-instance" || tokens[1] != "v1") {
    result.error = AtLine(reader.line_number(),
                          "expected header 'tdmd-instance v1'");
    return result;
  }
  double lambda = 0.0;
  // The containment test is written positively so NaN (for which both
  // `lambda < 0.0` and `lambda > 1.0` are false) is rejected here with a
  // line number instead of aborting later in Instance's CHECK.
  if (!reader.Next(tokens) || tokens.size() != 2 || tokens[0] != "lambda" ||
      !ParseDouble(tokens[1], lambda) || !std::isfinite(lambda) ||
      !(lambda >= 0.0 && lambda <= 1.0)) {
    result.error = AtLine(reader.line_number(),
                          "expected 'lambda <value in [0,1]>'");
    return result;
  }
  if (!reader.Next(tokens)) {
    result.error = AtLine(reader.line_number(), "missing 'digraph' section");
    return result;
  }
  std::vector<std::string> pending_line;
  bool pending = false;
  Parsed<graph::Digraph> g =
      ReadDigraphBody(reader, tokens, pending_line, pending);
  if (!g.ok()) {
    result.error = g.error;
    return result;
  }
  if (!pending) {
    result.error = "missing 'flows' section";
    return result;
  }
  Parsed<traffic::FlowSet> flows =
      ReadFlowsBody(reader, pending_line, tokens);
  if (!flows.ok()) {
    result.error = flows.error;
    return result;
  }
  if (reader.Next(tokens)) {
    result.error = AtLine(reader.line_number(),
                          "unexpected record after the flow section (wrong "
                          "'flows' count?)");
    return result;
  }
  // Semantic validation (paths exist in the graph) with a parse-style
  // error rather than Instance's CHECK abort.
  if (!traffic::AllFlowsValid(*g.value, *flows.value)) {
    result.error = "flow set references paths that do not exist in the "
                   "digraph";
    return result;
  }
  result.value =
      core::Instance(std::move(*g.value), std::move(*flows.value), lambda);
  return result;
}

Parsed<core::Deployment> ReadDeployment(std::istream& is,
                                        VertexId num_vertices) {
  Parsed<core::Deployment> result;
  LineReader reader(is);
  std::vector<std::string> tokens;
  if (!reader.Next(tokens) || tokens[0] != "deployment") {
    result.error = AtLine(reader.line_number(), "expected 'deployment'");
    return result;
  }
  core::Deployment deployment(num_vertices);
  while (reader.Next(tokens)) {
    std::int64_t v = 0;
    if (tokens[0] != "box" || tokens.size() != 2 ||
        !ParseInt(tokens[1], v) || v < 0 || v >= num_vertices) {
      result.error = AtLine(reader.line_number(), "malformed 'box <v>'");
      return result;
    }
    if (deployment.Contains(static_cast<VertexId>(v))) {
      result.error = AtLine(reader.line_number(), "duplicate box");
      return result;
    }
    deployment.Add(static_cast<VertexId>(v));
  }
  result.value = std::move(deployment);
  return result;
}

namespace {

bool ParseU64(const std::string& token, std::uint64_t& out) {
  // stoull silently wraps "-1"; reject signs up front.
  if (token.empty() || token[0] == '-' || token[0] == '+') return false;
  try {
    std::size_t consumed = 0;
    out = std::stoull(token, &consumed);
    return consumed == token.size();
  } catch (const std::exception&) {
    return false;
  }
}

/// Strictly ordered `<key> <u64>` line.
bool ReadKeyedU64(LineReader& reader, std::vector<std::string>& tokens,
                  const char* key, std::uint64_t& out, std::string& error) {
  if (!reader.Next(tokens) || tokens.size() != 2 || tokens[0] != key ||
      !ParseU64(tokens[1], out)) {
    error = AtLine(reader.line_number(),
                   std::string("expected '") + key + " <u64>'");
    return false;
  }
  return true;
}

/// `counter <name> <u64>` line; the name must match, which pins the file
/// to TDMD_ENGINE_STATS_COUNTERS order.
bool ReadCounterLine(LineReader& reader, std::vector<std::string>& tokens,
                     const char* name, std::uint64_t& out,
                     std::string& error) {
  if (!reader.Next(tokens) || tokens.size() != 3 || tokens[0] != "counter" ||
      tokens[1] != name || !ParseU64(tokens[2], out)) {
    error = AtLine(reader.line_number(),
                   std::string("expected 'counter ") + name + " <u64>'");
    return false;
  }
  return true;
}

/// `<key> <hexfloat>` line; requires a finite value.
bool ReadKeyedDouble(LineReader& reader, std::vector<std::string>& tokens,
                     const char* key, double& out, std::string& error) {
  if (!reader.Next(tokens) || tokens.size() != 2 || tokens[0] != key ||
      !ParseDouble(tokens[1], out) || !std::isfinite(out)) {
    error = AtLine(reader.line_number(),
                   std::string("expected '") + key + " <finite double>'");
    return false;
  }
  return true;
}

/// Non-negative ticket from `<keyword> <t>` lines.
bool ParseTicket(const std::string& token, engine::FlowTicket& out) {
  std::int64_t value = 0;
  if (!ParseInt(token, value) || value < 0) return false;
  out = value;
  return true;
}

/// One `histogram <name> <count> <sum> <min> <max> <buckets>` block of the
/// optional histograms section, followed by its `bucket <index> <count>`
/// lines.  Coherence (ascending in-range indices, counts summing to
/// `count`, min <= max) is delegated to LatencyHistogram::Restore so the
/// parser and the engine enforce the same invariants.
bool ReadHistogramBlock(LineReader& reader, std::vector<std::string>& tokens,
                        const char* name, obs::HistogramSnapshot& out,
                        std::string& error) {
  std::uint64_t num_buckets = 0;
  if (!reader.Next(tokens) || tokens.size() != 7 ||
      tokens[0] != "histogram" || tokens[1] != name ||
      !ParseU64(tokens[2], out.count) || !ParseU64(tokens[3], out.sum) ||
      !ParseU64(tokens[4], out.min) || !ParseU64(tokens[5], out.max) ||
      !ParseU64(tokens[6], num_buckets)) {
    error = AtLine(reader.line_number(),
                   std::string("expected 'histogram ") + name +
                       " <count> <sum> <min> <max> <buckets>'");
    return false;
  }
  if (num_buckets > obs::kNumBuckets) {
    error = AtLine(reader.line_number(),
                   "histogram bucket count out of range");
    return false;
  }
  out.buckets.reserve(CappedCount(num_buckets));
  for (std::uint64_t i = 0; i < num_buckets; ++i) {
    std::uint64_t index = 0;
    std::uint64_t bucket_count = 0;
    if (!reader.Next(tokens) || tokens.size() != 3 ||
        tokens[0] != "bucket" || !ParseU64(tokens[1], index) ||
        !ParseU64(tokens[2], bucket_count)) {
      error = AtLine(reader.line_number(),
                     "expected 'bucket <index> <count>'");
      return false;
    }
    if (index >= obs::kNumBuckets) {
      error = AtLine(reader.line_number(), "bucket index out of range");
      return false;
    }
    out.buckets.emplace_back(static_cast<std::uint32_t>(index),
                             bucket_count);
  }
  obs::LatencyHistogram probe;
  if (!probe.Restore(out)) {
    error = AtLine(reader.line_number(),
                   std::string("incoherent histogram '") + name + "'");
    return false;
  }
  return true;
}

}  // namespace

Parsed<engine::EngineCheckpoint> ReadEngineCheckpoint(std::istream& is) {
  return ReadEngineCheckpoint(is, /*require_eof=*/true);
}

Parsed<engine::EngineCheckpoint> ReadEngineCheckpoint(std::istream& is,
                                                      bool require_eof) {
  Parsed<engine::EngineCheckpoint> result;
  engine::EngineCheckpoint cp;
  LineReader reader(is);
  std::vector<std::string> tokens;

  if (!reader.Next(tokens) || tokens.size() != 2 ||
      tokens[0] != "engine-checkpoint" || tokens[1] != "v1") {
    result.error = AtLine(reader.line_number(),
                          "expected header 'engine-checkpoint v1'");
    return result;
  }
  if (!ReadKeyedU64(reader, tokens, "epoch", cp.epoch, result.error) ||
      !ReadKeyedU64(reader, tokens, "snapshot-version", cp.snapshot_version,
                    result.error)) {
    return result;
  }
  if (!reader.Next(tokens) || tokens.size() != 2 || tokens[0] != "mode") {
    result.error = AtLine(reader.line_number(),
                          "expected 'mode <normal|degraded|patch-only>'");
    return result;
  }
  bool mode_matched = false;
  for (engine::EngineMode m :
       {engine::EngineMode::kNormal, engine::EngineMode::kDegraded,
        engine::EngineMode::kPatchOnly}) {
    if (tokens[1] == engine::EngineModeName(m)) {
      cp.mode = m;
      mode_matched = true;
      break;
    }
  }
  if (!mode_matched) {
    result.error = AtLine(reader.line_number(),
                          "unknown engine mode '" + tokens[1] + "'");
    return result;
  }
  if (!ReadKeyedU64(reader, tokens, "consecutive-failures",
                    cp.consecutive_failures, result.error) ||
      !ReadKeyedU64(reader, tokens, "epochs-since-probe",
                    cp.epochs_since_probe, result.error) ||
      !ReadKeyedU64(reader, tokens, "pending-churn", cp.pending_churn,
                    result.error) ||
      !ReadKeyedU64(reader, tokens, "k", cp.k, result.error)) {
    return result;
  }
  if (!ReadKeyedDouble(reader, tokens, "lambda", cp.lambda, result.error)) {
    return result;
  }
  if (!(cp.lambda >= 0.0 && cp.lambda <= 1.0)) {
    result.error =
        AtLine(reader.line_number(), "lambda outside [0,1]");
    return result;
  }
  std::int64_t num_vertices = 0;
  if (!reader.Next(tokens) || tokens.size() != 2 ||
      tokens[0] != "num-vertices" || !ParseInt(tokens[1], num_vertices) ||
      !FitsVertexId(num_vertices)) {
    result.error =
        AtLine(reader.line_number(), "expected 'num-vertices <v>'");
    return result;
  }
  cp.num_vertices = static_cast<VertexId>(num_vertices);
  if (!ReadKeyedDouble(reader, tokens, "bandwidth", cp.maintained_bandwidth,
                       result.error)) {
    return result;
  }
  std::uint64_t feasible = 0;
  if (!ReadKeyedU64(reader, tokens, "feasible", feasible, result.error)) {
    return result;
  }
  if (feasible > 1) {
    result.error = AtLine(reader.line_number(), "feasible must be 0 or 1");
    return result;
  }
  cp.maintained_feasible = feasible == 1;

#define TDMD_READ_COUNTER(field)                                     \
  if (!ReadCounterLine(reader, tokens, #field, cp.stats.field,       \
                       result.error)) {                              \
    return result;                                                   \
  }
  TDMD_ENGINE_STATS_COUNTERS(TDMD_READ_COUNTER)
#undef TDMD_READ_COUNTER
  // The mode rides in the dedicated `mode` record, not the counter block.
  cp.stats.mode = cp.mode;

  std::uint64_t count = 0;
  if (!ReadKeyedU64(reader, tokens, "deployment", count, result.error)) {
    return result;
  }
  if (count > static_cast<std::uint64_t>(num_vertices)) {
    result.error = AtLine(reader.line_number(),
                          "deployment count exceeds num-vertices");
    return result;
  }
  std::vector<char> deployed(static_cast<std::size_t>(num_vertices), 0);
  cp.deployment.reserve(CappedCount(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    std::int64_t v = 0;
    if (!reader.Next(tokens) || tokens.size() != 2 || tokens[0] != "box" ||
        !ParseInt(tokens[1], v) || v < 0 || v >= num_vertices) {
      result.error = AtLine(reader.line_number(), "malformed 'box <v>'");
      return result;
    }
    if (deployed[static_cast<std::size_t>(v)]) {
      result.error = AtLine(reader.line_number(), "duplicate box");
      return result;
    }
    deployed[static_cast<std::size_t>(v)] = 1;
    cp.deployment.push_back(static_cast<VertexId>(v));
  }

  if (!ReadKeyedU64(reader, tokens, "uncovered", count, result.error)) {
    return result;
  }
  cp.uncovered.reserve(CappedCount(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    engine::FlowTicket t = engine::kInvalidTicket;
    if (!reader.Next(tokens) || tokens.size() != 2 ||
        tokens[0] != "ticket" || !ParseTicket(tokens[1], t)) {
      result.error =
          AtLine(reader.line_number(), "malformed 'ticket <t>'");
      return result;
    }
    cp.uncovered.push_back(t);
  }

  if (!ReadKeyedU64(reader, tokens, "flows", count, result.error)) {
    return result;
  }
  cp.active_flows.reserve(CappedCount(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    if (!reader.Next(tokens) || tokens.size() < 4 || tokens[0] != "flow") {
      result.error = AtLine(
          reader.line_number(),
          "expected 'flow <ticket> <rate> <v0> ... <vk>'");
      return result;
    }
    engine::EngineCheckpoint::ActiveFlow af;
    std::int64_t rate = 0;
    if (!ParseTicket(tokens[1], af.ticket) || !ParseInt(tokens[2], rate) ||
        rate <= 0) {
      result.error = AtLine(reader.line_number(),
                            "flow ticket must be non-negative and rate a "
                            "positive integer");
      return result;
    }
    af.flow.rate = rate;
    for (std::size_t t = 3; t < tokens.size(); ++t) {
      std::int64_t v = 0;
      if (!ParseInt(tokens[t], v) || !FitsVertexId(v) ||
          v >= num_vertices) {
        result.error =
            AtLine(reader.line_number(), "malformed path vertex");
        return result;
      }
      af.flow.path.vertices.push_back(static_cast<VertexId>(v));
    }
    af.flow.src = af.flow.path.vertices.front();
    af.flow.dst = af.flow.path.vertices.back();
    cp.active_flows.push_back(std::move(af));
  }

  if (!ReadKeyedU64(reader, tokens, "free-slots", count, result.error)) {
    return result;
  }
  cp.free_slots.reserve(CappedCount(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    engine::FlowTicket t = engine::kInvalidTicket;
    if (!reader.Next(tokens) || tokens.size() != 2 || tokens[0] != "free" ||
        !ParseTicket(tokens[1], t)) {
      result.error = AtLine(reader.line_number(), "malformed 'free <t>'");
      return result;
    }
    cp.free_slots.push_back(t);
  }

  if (!reader.Next(tokens)) {
    result.error = AtLine(reader.line_number(),
                          "expected terminator 'end engine-checkpoint'");
    return result;
  }
  if (!tokens.empty() && tokens[0] == "histograms") {
    // Optional latency-histogram section; records written before it
    // existed (or with include_histograms off) end right at the
    // terminator instead and restore with empty histograms.
    if (tokens.size() != 2 || tokens[1] != "4") {
      result.error = AtLine(reader.line_number(), "expected 'histograms 4'");
      return result;
    }
    if (!ReadHistogramBlock(reader, tokens, "patch", cp.patch_histogram,
                            result.error) ||
        !ReadHistogramBlock(reader, tokens, "resolve", cp.resolve_histogram,
                            result.error) ||
        !ReadHistogramBlock(reader, tokens, "index-delta",
                            cp.index_delta_histogram, result.error) ||
        !ReadHistogramBlock(reader, tokens, "greedy-round",
                            cp.greedy_round_histogram, result.error)) {
      return result;
    }
    if (!reader.Next(tokens)) {
      result.error = AtLine(reader.line_number(),
                            "expected terminator 'end engine-checkpoint'");
      return result;
    }
  }
  if (!tokens.empty() && tokens[0] == "quality") {
    // Optional quality-observability section (also absent from records
    // written with include_quality off or before the section existed).
    if (tokens.size() != 2 || tokens[1] != "v1") {
      result.error = AtLine(reader.line_number(), "expected 'quality v1'");
      return result;
    }
    cp.has_quality = true;
    const auto read_attr = [&](obs::VertexAttribution& out) {
      std::int64_t v = 0;
      double marginal = 0.0;
      if (!reader.Next(tokens) || tokens.size() != 3 || tokens[0] != "qv" ||
          !ParseInt(tokens[1], v) || v < 0 || v >= num_vertices ||
          !ParseDouble(tokens[2], marginal) || !std::isfinite(marginal)) {
        result.error = AtLine(reader.line_number(),
                              "malformed 'qv <vertex> <marginal>'");
        return false;
      }
      out.vertex = static_cast<VertexId>(v);
      out.marginal_decrement = marginal;
      return true;
    };
    std::uint64_t flag = 0;
    if (!reader.Next(tokens) || tokens.size() != 3 ||
        tokens[0] != "qbound" || !ParseU64(tokens[1], flag) || flag > 1 ||
        !ParseDouble(tokens[2], cp.quality_tracker.cert_bound) ||
        !std::isfinite(cp.quality_tracker.cert_bound)) {
      result.error = AtLine(reader.line_number(),
                            "expected 'qbound <0|1> <bound>'");
      return result;
    }
    cp.quality_tracker.cert_valid = flag == 1;
    if (!ReadKeyedU64(reader, tokens, "qadoption-age",
                      cp.quality_tracker.epochs_since_adoption,
                      result.error)) {
      return result;
    }
    std::uint64_t qcount = 0;
    if (!ReadKeyedU64(reader, tokens, "qattr", qcount, result.error)) {
      return result;
    }
    if (qcount > static_cast<std::uint64_t>(num_vertices)) {
      result.error = AtLine(reader.line_number(),
                            "qattr count exceeds num-vertices");
      return result;
    }
    cp.quality_attribution.reserve(CappedCount(qcount));
    for (std::uint64_t i = 0; i < qcount; ++i) {
      obs::VertexAttribution attr;
      if (!read_attr(attr)) return result;
      cp.quality_attribution.push_back(attr);
    }
    obs::QualityTimelineSnapshot& q = cp.quality;
    std::uint64_t primed = 0;
    std::uint64_t active_bits = 0;
    if (!reader.Next(tokens) || tokens.size() != 8 ||
        tokens[0] != "qdetector" || !ParseDouble(tokens[1], q.ewma) ||
        !std::isfinite(q.ewma) || !ParseU64(tokens[2], primed) ||
        primed > 1 || !ParseDouble(tokens[3], q.cusum) ||
        !std::isfinite(q.cusum) || !ParseU64(tokens[4], active_bits) ||
        active_bits >= (1ULL << obs::kNumQualityAlertKinds) ||
        !ParseU64(tokens[5], q.samples_total) ||
        !ParseU64(tokens[6], q.alerts_raised_total) ||
        !ParseU64(tokens[7], q.alerts_cleared_total)) {
      result.error = AtLine(reader.line_number(),
                            "malformed 'qdetector' record");
      return result;
    }
    q.ewma_primed = primed == 1;
    q.active_alerts = static_cast<std::uint32_t>(active_bits);
    if (!ReadKeyedU64(reader, tokens, "qsamples", qcount, result.error)) {
      return result;
    }
    if (qcount > q.samples_total) {
      result.error = AtLine(reader.line_number(),
                            "qsamples exceeds samples-total");
      return result;
    }
    q.samples.reserve(CappedCount(qcount));
    for (std::uint64_t i = 0; i < qcount; ++i) {
      obs::QualitySample s;
      std::uint64_t s_feasible = 0;
      std::uint64_t s_deployed = 0;
      std::uint64_t s_budget = 0;
      std::uint64_t s_moves = 0;
      std::uint64_t s_certified = 0;
      std::uint64_t s_nattr = 0;
      if (!reader.Next(tokens) || tokens.size() != 14 ||
          tokens[0] != "qsample" || !ParseU64(tokens[1], s.epoch) ||
          !ParseU64(tokens[2], s.version) || !ParseU64(tokens[3], s.mode) ||
          s.mode > 2 || !ParseU64(tokens[4], s_feasible) ||
          s_feasible > 1 || !ParseU64(tokens[5], s_deployed) ||
          s_deployed > static_cast<std::uint64_t>(num_vertices) ||
          !ParseU64(tokens[6], s_budget) ||
          s_budget > std::numeric_limits<std::uint32_t>::max() ||
          !ParseU64(tokens[7], s_moves) ||
          s_moves > std::numeric_limits<std::uint32_t>::max() ||
          !ParseU64(tokens[8], s.epochs_since_adoption) ||
          !ParseU64(tokens[9], s_certified) || s_certified > 1 ||
          !ParseDouble(tokens[10], s.bandwidth) ||
          !std::isfinite(s.bandwidth) ||
          !ParseDouble(tokens[11], s.unprocessed) ||
          !std::isfinite(s.unprocessed) ||
          !ParseDouble(tokens[12], s.opt_bound) ||
          !std::isfinite(s.opt_bound) || !ParseU64(tokens[13], s_nattr) ||
          s_nattr > static_cast<std::uint64_t>(num_vertices)) {
        result.error =
            AtLine(reader.line_number(), "malformed 'qsample' record");
        return result;
      }
      s.feasible = s_feasible == 1;
      s.certified = s_certified == 1;
      s.deployed = static_cast<std::uint32_t>(s_deployed);
      s.budget = static_cast<std::uint32_t>(s_budget);
      s.churn_moves = static_cast<std::uint32_t>(s_moves);
      s.attribution.reserve(CappedCount(s_nattr));
      for (std::uint64_t a = 0; a < s_nattr; ++a) {
        obs::VertexAttribution attr;
        if (!read_attr(attr)) return result;
        s.attribution.push_back(attr);
      }
      obs::DeriveQualityFields(&s);  // derived fields are never trusted
      q.samples.push_back(std::move(s));
    }
    if (!ReadKeyedU64(reader, tokens, "qalerts", qcount, result.error)) {
      return result;
    }
    if (qcount > obs::QualityTimeline::kMaxAlertLog) {
      result.error =
          AtLine(reader.line_number(), "qalerts count out of range");
      return result;
    }
    q.alerts.reserve(CappedCount(qcount));
    for (std::uint64_t i = 0; i < qcount; ++i) {
      obs::QualityAlert alert;
      std::uint64_t kind = 0;
      std::uint64_t raised = 0;
      if (!reader.Next(tokens) || tokens.size() != 6 ||
          tokens[0] != "qalert" || !ParseU64(tokens[1], kind) ||
          kind >= obs::kNumQualityAlertKinds ||
          !ParseU64(tokens[2], raised) || raised > 1 ||
          !ParseU64(tokens[3], alert.epoch) ||
          !ParseDouble(tokens[4], alert.value) ||
          !std::isfinite(alert.value) ||
          !ParseDouble(tokens[5], alert.threshold) ||
          !std::isfinite(alert.threshold)) {
        result.error =
            AtLine(reader.line_number(), "malformed 'qalert' record");
        return result;
      }
      alert.kind = static_cast<obs::QualityAlertKind>(kind);
      alert.raised = raised == 1;
      q.alerts.push_back(alert);
    }
    if (!reader.Next(tokens) || tokens.size() != 2 || tokens[0] != "end" ||
        tokens[1] != "quality") {
      result.error =
          AtLine(reader.line_number(), "expected terminator 'end quality'");
      return result;
    }
    if (!reader.Next(tokens)) {
      result.error = AtLine(reader.line_number(),
                            "expected terminator 'end engine-checkpoint'");
      return result;
    }
  }
  if (tokens.size() != 2 || tokens[0] != "end" ||
      tokens[1] != "engine-checkpoint") {
    result.error = AtLine(reader.line_number(),
                          "expected terminator 'end engine-checkpoint'");
    return result;
  }
  if (require_eof && reader.Next(tokens)) {
    result.error = AtLine(reader.line_number(),
                          "unexpected record after 'end engine-checkpoint'");
    return result;
  }
  result.value = std::move(cp);
  return result;
}

// --- File helpers -------------------------------------------------------

bool WriteFile(const std::string& path,
               const std::function<void(std::ostream&)>& content_writer) {
  // Torn-write-safe for every caller: temp file + fsync + atomic rename
  // (a crash mid-write leaves the previous file, never a prefix).
  return WriteFileAtomic(path, content_writer);
}

bool WriteEngineCheckpointFile(const std::string& path,
                               const engine::EngineCheckpoint& checkpoint,
                               const EngineCheckpointWriteOptions& options,
                               faults::FaultInjector* fault_injector,
                               std::string* error) {
  AtomicWriteOptions write_options;
  write_options.crc_trailer = true;
  write_options.fault_injector = fault_injector;
  return WriteFileAtomic(
      path,
      [&](std::ostream& os) { WriteEngineCheckpoint(os, checkpoint, options); },
      write_options, error);
}

Parsed<core::Instance> ReadInstanceFile(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    return {std::nullopt, "cannot open '" + path + "'"};
  }
  Parsed<core::Instance> result = ReadInstance(is);
  if (!result.ok()) {
    result.error = path + ": " + result.error;
  }
  return result;
}

Parsed<graph::Tree> ReadTreeFile(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    return {std::nullopt, "cannot open '" + path + "'"};
  }
  Parsed<graph::Tree> result = ReadTree(is);
  if (!result.ok()) {
    result.error = path + ": " + result.error;
  }
  return result;
}

Parsed<engine::EngineCheckpoint> ReadEngineCheckpointFile(
    const std::string& path) {
  // Checkpoint files are integrity-checked end to end: the CRC trailer
  // written by WriteEngineCheckpointFile must be present and match, so a
  // torn or bit-flipped file is rejected before any parsing happens.
  VerifiedPayload verified = ReadFileVerified(path);
  if (!verified.ok()) {
    return {std::nullopt, verified.error};
  }
  std::istringstream is(verified.payload);
  Parsed<engine::EngineCheckpoint> result = ReadEngineCheckpoint(is);
  if (!result.ok()) {
    result.error = path + ": " + result.error;
  }
  return result;
}

}  // namespace tdmd::io
