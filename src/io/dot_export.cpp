#include "io/dot_export.hpp"

#include <algorithm>
#include <ostream>
#include <vector>

#include "sim/link_sim.hpp"

namespace tdmd::io {

void WriteDot(std::ostream& os, const core::Instance& instance,
              const core::Deployment& deployment,
              const DotOptions& options) {
  const graph::Digraph& g = instance.network();
  const sim::LinkLoadReport report =
      sim::SimulateLinkLoads(instance, deployment);

  std::vector<char> is_source(static_cast<std::size_t>(g.num_vertices()),
                              0);
  std::vector<char> is_destination(
      static_cast<std::size_t>(g.num_vertices()), 0);
  for (FlowId f = 0; f < instance.num_flows(); ++f) {
    is_source[static_cast<std::size_t>(instance.flow(f).src)] = 1;
    is_destination[static_cast<std::size_t>(instance.flow(f).dst)] = 1;
  }

  os << "digraph tdmd {\n";
  os << "  rankdir=" << options.rankdir << ";\n";
  os << "  node [fontname=\"Helvetica\"];\n";
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    os << "  v" << v << " [label=\"v" << v << '"';
    if (deployment.Contains(v)) {
      os << ", shape=box, style=filled, fillcolor=\"#ffd27f\"";
    } else if (is_destination[static_cast<std::size_t>(v)]) {
      os << ", shape=doublecircle";
    } else if (is_source[static_cast<std::size_t>(v)]) {
      os << ", shape=diamond";
    } else {
      os << ", shape=circle";
    }
    os << "];\n";
  }

  const Bandwidth peak = std::max<Bandwidth>(report.peak, 1e-9);
  for (EdgeId e = 0; e < g.num_arcs(); ++e) {
    const Bandwidth load = report.arc_load[static_cast<std::size_t>(e)];
    if (options.hide_idle_edges && load <= 0.0) continue;
    const graph::Arc& a = g.arc(e);
    os << "  v" << a.tail << " -> v" << a.head << " [";
    if (options.edge_loads) {
      os << "label=\"" << load << "\", ";
    }
    os << "penwidth=" << 0.5 + 3.5 * load / peak << "];\n";
  }
  os << "}\n";
}

}  // namespace tdmd::io
