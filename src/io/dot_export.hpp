// Graphviz DOT export: topology + deployment + link loads, for the
// figures a README or paper reproduction wants to render.
//
//   dot -Tsvg plan.dot -o plan.svg
//
// Middlebox vertices render as filled boxes, flow sources as diamonds,
// destinations as double circles; edge labels carry the simulated
// occupied bandwidth and edge thickness scales with load.
#pragma once

#include <iosfwd>

#include "core/deployment.hpp"
#include "core/instance.hpp"

namespace tdmd::io {

struct DotOptions {
  /// Label edges with their simulated occupied bandwidth.
  bool edge_loads = true;
  /// Drop zero-load edges entirely (uncluttered spam-filter pictures).
  bool hide_idle_edges = false;
  /// Rankdir; "BT" puts tree roots on top.
  const char* rankdir = "BT";
};

void WriteDot(std::ostream& os, const core::Instance& instance,
              const core::Deployment& deployment,
              const DotOptions& options = {});

}  // namespace tdmd::io
