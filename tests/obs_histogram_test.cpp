// Latency-histogram edge cases: empty/single-sample summaries, bucket
// boundary mapping, the 12.5% relative-error bound, merge associativity,
// quantile clamping, and snapshot round trips with strict Restore
// validation.
#include "obs/histogram.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace tdmd::obs {
namespace {

TEST(ObsHistogramTest, EmptyHistogramReportsZeros) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.Quantile(0.5), 0u);
  const HistogramSummary summary = h.Summarize();
  EXPECT_EQ(summary.count, 0u);
  EXPECT_EQ(summary.p50, 0u);
  EXPECT_EQ(summary.p99, 0u);
  EXPECT_EQ(summary.mean, 0.0);
  EXPECT_TRUE(h.Snapshot().buckets.empty());
}

TEST(ObsHistogramTest, SingleSampleIsReportedExactly) {
  LatencyHistogram h;
  h.Record(12345);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.sum(), 12345u);
  EXPECT_EQ(h.min(), 12345u);
  EXPECT_EQ(h.max(), 12345u);
  // The bucket lower bound (12288) clamps up into [min, max], so every
  // quantile of a one-sample histogram is that sample.
  EXPECT_EQ(h.Quantile(0.0), 12345u);
  EXPECT_EQ(h.Quantile(0.5), 12345u);
  EXPECT_EQ(h.Quantile(1.0), 12345u);
}

TEST(ObsHistogramTest, SmallValuesGetExactBuckets) {
  for (std::uint64_t v = 0; v < 16; ++v) {
    EXPECT_EQ(LatencyHistogram::BucketIndex(v), v);
    EXPECT_EQ(LatencyHistogram::BucketLowerBound(
                  static_cast<std::uint32_t>(v)),
              v);
  }
}

TEST(ObsHistogramTest, BucketBoundaries) {
  // 15 is the last exact bucket; 16 starts the first log-linear group.
  EXPECT_EQ(LatencyHistogram::BucketIndex(15), 15u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(16), 16u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(17), 16u);
  EXPECT_EQ(LatencyHistogram::BucketLowerBound(16), 16u);
  // 127 and 128 land on opposite sides of a power-of-two boundary.
  const std::uint32_t below = LatencyHistogram::BucketIndex(127);
  const std::uint32_t at = LatencyHistogram::BucketIndex(128);
  EXPECT_EQ(at, below + 1);
  EXPECT_EQ(LatencyHistogram::BucketIndex(129), at);
  EXPECT_EQ(LatencyHistogram::BucketLowerBound(at), 128u);
}

TEST(ObsHistogramTest, BucketIndexIsMonotoneWithBoundedError) {
  // Deterministic pseudo-random walk over several decades.
  std::uint64_t v = 1;
  std::uint32_t last_index = 0;
  for (int i = 0; i < 2000; ++i) {
    v = v * 6364136223846793005ULL + 1442695040888963407ULL;
    const std::uint64_t value = v >> (8 + (i % 40));  // vary the scale
    const std::uint32_t index = LatencyHistogram::BucketIndex(value);
    ASSERT_LT(index, kNumBuckets);
    const std::uint64_t lb = LatencyHistogram::BucketLowerBound(index);
    ASSERT_LE(lb, value);
    // Relative under-estimate of at most 1/8 of the value.
    ASSERT_LE((value - lb) * 8, value) << "value " << value;
    if (i > 0 && value >= 1) {
      // Order preservation spot check against the previous value.
      const std::uint32_t smaller = LatencyHistogram::BucketIndex(value / 2);
      ASSERT_LE(smaller, index);
    }
    last_index = index;
  }
  (void)last_index;
}

TEST(ObsHistogramTest, MergeMatchesRecordingTheUnion) {
  const std::vector<std::uint64_t> a = {1, 7, 300, 4096, 99999};
  const std::vector<std::uint64_t> b = {0, 16, 300, 1u << 20};
  LatencyHistogram ha;
  LatencyHistogram hb;
  LatencyHistogram hu;
  for (std::uint64_t v : a) {
    ha.Record(v);
    hu.Record(v);
  }
  for (std::uint64_t v : b) {
    hb.Record(v);
    hu.Record(v);
  }
  ha.Merge(hb);
  const HistogramSnapshot merged = ha.Snapshot();
  const HistogramSnapshot together = hu.Snapshot();
  EXPECT_EQ(merged.count, together.count);
  EXPECT_EQ(merged.sum, together.sum);
  EXPECT_EQ(merged.min, together.min);
  EXPECT_EQ(merged.max, together.max);
  EXPECT_EQ(merged.buckets, together.buckets);
}

TEST(ObsHistogramTest, MergeIsAssociative) {
  LatencyHistogram h1;
  LatencyHistogram h2;
  LatencyHistogram h3;
  for (std::uint64_t v = 1; v <= 64; ++v) {
    if (v % 3 == 0) h1.Record(v * 17);
    if (v % 3 == 1) h2.Record(v * 333);
    if (v % 3 == 2) h3.Record(v);
  }
  // (h1 + h2) + h3
  LatencyHistogram left = h1;
  left.Merge(h2);
  left.Merge(h3);
  // h1 + (h2 + h3)
  LatencyHistogram inner = h2;
  inner.Merge(h3);
  LatencyHistogram right = h1;
  right.Merge(inner);
  EXPECT_EQ(left.Snapshot().buckets, right.Snapshot().buckets);
  EXPECT_EQ(left.sum(), right.sum());
  EXPECT_EQ(left.min(), right.min());
  EXPECT_EQ(left.max(), right.max());
}

TEST(ObsHistogramTest, QuantilesClampIntoObservedRange) {
  LatencyHistogram h;
  for (int i = 0; i < 9; ++i) h.Record(100);
  h.Record(1000000);
  // The p50 bucket's lower bound (96) is below the smallest sample, so
  // the clamp pulls it up to min.
  EXPECT_EQ(h.Quantile(0.5), 100u);
  // The top quantile lands in the outlier's bucket: below max, within
  // the 12.5% bucket error.
  const std::uint64_t p99 = h.Quantile(0.99);
  EXPECT_LE(p99, 1000000u);
  EXPECT_GE(p99 * 8, 7u * 1000000u);
}

TEST(ObsHistogramTest, SummarizeSixteenDistinctValues) {
  LatencyHistogram h;
  for (std::uint64_t v = 1; v <= 16; ++v) h.Record(v);
  const HistogramSummary s = h.Summarize();
  EXPECT_EQ(s.count, 16u);
  EXPECT_EQ(s.sum, 136u);
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 16u);
  EXPECT_EQ(s.p50, 8u);   // exact buckets below 16
  EXPECT_EQ(s.p95, 16u);  // ceil(0.95 * 16) = 16th sample
  EXPECT_EQ(s.p99, 16u);
  EXPECT_DOUBLE_EQ(s.mean, 8.5);
}

TEST(ObsHistogramTest, SnapshotRoundTrips) {
  LatencyHistogram h;
  for (std::uint64_t v : {5u, 5u, 70u, 900u, 1u << 30}) h.Record(v);
  const HistogramSnapshot snapshot = h.Snapshot();
  LatencyHistogram restored;
  ASSERT_TRUE(restored.Restore(snapshot));
  EXPECT_EQ(restored.count(), h.count());
  EXPECT_EQ(restored.sum(), h.sum());
  EXPECT_EQ(restored.min(), h.min());
  EXPECT_EQ(restored.max(), h.max());
  EXPECT_EQ(restored.Snapshot().buckets, snapshot.buckets);
  EXPECT_EQ(restored.Quantile(0.5), h.Quantile(0.5));
}

TEST(ObsHistogramTest, RestoreRejectsIncoherentSnapshots) {
  LatencyHistogram h;
  h.Record(42);
  const HistogramSnapshot before = h.Snapshot();

  HistogramSnapshot bad = before;
  bad.buckets[0].first = kNumBuckets;  // index out of range
  EXPECT_FALSE(h.Restore(bad));

  bad = before;
  bad.buckets.push_back(bad.buckets[0]);  // not strictly ascending
  EXPECT_FALSE(h.Restore(bad));

  bad = before;
  bad.buckets[0].second = 0;  // zero bucket count
  EXPECT_FALSE(h.Restore(bad));

  bad = before;
  bad.count = 7;  // bucket totals disagree
  EXPECT_FALSE(h.Restore(bad));

  bad = before;
  bad.min = bad.max + 1;
  EXPECT_FALSE(h.Restore(bad));

  bad = HistogramSnapshot{};
  bad.sum = 1;  // nonzero totals on an empty snapshot
  EXPECT_FALSE(h.Restore(bad));

  // Every failed Restore left the histogram untouched.
  EXPECT_EQ(h.Snapshot().buckets, before.buckets);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.sum(), 42u);
}

TEST(ObsHistogramTest, MergeWithEmptyIsIdentityBothWays) {
  LatencyHistogram populated;
  for (std::uint64_t v : {3u, 17u, 290u, 70000u}) populated.Record(v);
  const HistogramSnapshot before = populated.Snapshot();

  // Merging an empty histogram in — including one freshly restored from
  // an empty snapshot — must change nothing, not even min (the merge may
  // not adopt the empty side's zero sentinel).
  LatencyHistogram empty;
  ASSERT_TRUE(empty.Restore(HistogramSnapshot{}));
  populated.Merge(empty);
  EXPECT_EQ(populated.Snapshot().buckets, before.buckets);
  EXPECT_EQ(populated.count(), before.count);
  EXPECT_EQ(populated.sum(), before.sum);
  EXPECT_EQ(populated.min(), before.min);
  EXPECT_EQ(populated.max(), before.max);

  // Merging into an empty histogram reproduces the source exactly.
  LatencyHistogram target;
  target.Merge(populated);
  EXPECT_EQ(target.Snapshot().buckets, before.buckets);
  EXPECT_EQ(target.min(), before.min);
  EXPECT_EQ(target.max(), before.max);
  EXPECT_EQ(target.Quantile(0.5), populated.Quantile(0.5));

  // Empty-into-empty stays empty.
  LatencyHistogram a;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.min(), 0u);
  EXPECT_TRUE(a.Snapshot().buckets.empty());
}

TEST(ObsHistogramTest, OverflowBucketAccumulatesAcrossMerges) {
  // Values at the very top of the u64 range all map into the final
  // bucket; counts there must accumulate across Record and Merge rather
  // than saturate or remap.
  const std::uint64_t huge = ~std::uint64_t{0};
  ASSERT_EQ(LatencyHistogram::BucketIndex(huge), kNumBuckets - 1);
  ASSERT_EQ(LatencyHistogram::BucketIndex(huge - 1), kNumBuckets - 1);

  LatencyHistogram a;
  a.Record(huge);
  a.Record(huge - 1);
  LatencyHistogram b;
  b.Record(huge);
  b.Record(5);  // far-apart buckets survive the same merge
  a.Merge(b);

  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.min(), 5u);
  EXPECT_EQ(a.max(), huge);
  const HistogramSnapshot snapshot = a.Snapshot();
  ASSERT_EQ(snapshot.buckets.size(), 2u);
  EXPECT_EQ(snapshot.buckets.back().first, kNumBuckets - 1);
  EXPECT_EQ(snapshot.buckets.back().second, 3u);
  // The top-bucket lower bound exceeds no recorded value, and the
  // quantile clamp keeps the report inside [min, max] even though the
  // bucket nominally spans up to 2^64.
  EXPECT_LE(LatencyHistogram::BucketLowerBound(kNumBuckets - 1), huge);
  EXPECT_GE(a.Quantile(1.0),
            LatencyHistogram::BucketLowerBound(kNumBuckets - 1));
  EXPECT_LE(a.Quantile(1.0), huge);
}

TEST(ObsHistogramTest, SingleSampleQuantilesAfterMergeAndRestore) {
  // A single sample must be reported exactly at every quantile, however
  // it arrived: direct Record, Merge from another histogram, or Restore
  // of a one-sample snapshot.
  for (std::uint64_t value : {std::uint64_t{0}, std::uint64_t{15},
                              std::uint64_t{16}, std::uint64_t{999983}}) {
    LatencyHistogram direct;
    direct.Record(value);

    LatencyHistogram merged;
    merged.Merge(direct);

    LatencyHistogram restored;
    ASSERT_TRUE(restored.Restore(direct.Snapshot()));

    for (LatencyHistogram* h : {&direct, &merged, &restored}) {
      EXPECT_EQ(h->count(), 1u) << "value " << value;
      EXPECT_EQ(h->Quantile(0.0), value);
      EXPECT_EQ(h->Quantile(0.5), value);
      EXPECT_EQ(h->Quantile(1.0), value);
      const HistogramSummary summary = h->Summarize();
      EXPECT_EQ(summary.p50, value);
      EXPECT_EQ(summary.p95, value);
      EXPECT_EQ(summary.p99, value);
      EXPECT_EQ(summary.mean, static_cast<double>(value));
    }
  }
}

TEST(ObsHistogramTest, ScopedTimerRecordsOnceAndNullIsInert) {
  LatencyHistogram h;
  { ScopedHistogramTimer timer(&h); }
  EXPECT_EQ(h.count(), 1u);
  { ScopedHistogramTimer inert(nullptr); }
  EXPECT_EQ(h.count(), 1u);
}

}  // namespace
}  // namespace tdmd::obs
