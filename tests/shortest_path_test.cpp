#include "graph/shortest_path.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "graph/traversal.hpp"
#include "topology/generators.hpp"

namespace tdmd::graph {
namespace {

TEST(ShortestHopPathTest, TrivialSelfPath) {
  DigraphBuilder builder(2);
  builder.AddArc(0, 1);
  Digraph g = builder.Build();
  auto path = ShortestHopPath(g, 0, 0);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->NumEdges(), 0u);
  EXPECT_EQ(path->vertices, std::vector<VertexId>{0});
}

TEST(ShortestHopPathTest, PicksFewerHops) {
  // 0 -> 1 -> 2 -> 3 and a shortcut 0 -> 3.
  DigraphBuilder builder(4);
  builder.AddArc(0, 1);
  builder.AddArc(1, 2);
  builder.AddArc(2, 3);
  builder.AddArc(0, 3);
  Digraph g = builder.Build();
  auto path = ShortestHopPath(g, 0, 3);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->NumEdges(), 1u);
}

TEST(ShortestHopPathTest, UnreachableReturnsNullopt) {
  DigraphBuilder builder(3);
  builder.AddArc(0, 1);
  Digraph g = builder.Build();
  EXPECT_FALSE(ShortestHopPath(g, 0, 2).has_value());
  EXPECT_FALSE(ShortestHopPath(g, 1, 0).has_value());  // directed
}

TEST(ShortestHopPathTest, PathIsSimpleAndValid) {
  Rng rng(13);
  Digraph g = topology::Waxman(40, 0.4, 0.4, rng);
  int found = 0;
  for (VertexId target = 1; target < 40; ++target) {
    auto path = ShortestHopPath(g, 0, target);
    if (!path.has_value()) continue;
    ++found;
    EXPECT_TRUE(IsSimplePath(g, *path));
    EXPECT_EQ(path->vertices.front(), 0);
    EXPECT_EQ(path->vertices.back(), target);
  }
  EXPECT_GT(found, 0);
}

TEST(ShortestHopPathTest, LengthMatchesBfsDistance) {
  Rng rng(17);
  Digraph g = topology::ErdosRenyi(35, 0.12, rng);
  BfsResult bfs = BreadthFirst(g, 0);
  for (VertexId v = 0; v < 35; ++v) {
    auto path = ShortestHopPath(g, 0, v);
    const auto dist = bfs.dist[static_cast<std::size_t>(v)];
    if (dist < 0) {
      EXPECT_FALSE(path.has_value());
    } else {
      ASSERT_TRUE(path.has_value());
      EXPECT_EQ(static_cast<std::int32_t>(path->NumEdges()), dist);
    }
  }
}

TEST(DijkstraTest, UnitWeightsMatchBfs) {
  Rng rng(19);
  Digraph g = topology::Waxman(30, 0.5, 0.4, rng);
  std::vector<double> weights(static_cast<std::size_t>(g.num_arcs()), 1.0);
  WeightedSsspResult sssp = Dijkstra(g, 0, weights);
  BfsResult bfs = BreadthFirst(g, 0);
  for (VertexId v = 0; v < 30; ++v) {
    const auto dist = bfs.dist[static_cast<std::size_t>(v)];
    if (dist < 0) {
      EXPECT_TRUE(std::isinf(sssp.dist[static_cast<std::size_t>(v)]));
    } else {
      EXPECT_DOUBLE_EQ(sssp.dist[static_cast<std::size_t>(v)],
                       static_cast<double>(dist));
    }
  }
}

TEST(DijkstraTest, WeightedShortcutBeatsFewHops) {
  // 0 -> 1 -> 2 cheap (0.1 each) vs direct 0 -> 2 expensive (5).
  DigraphBuilder builder(3);
  const EdgeId e01 = builder.AddArc(0, 1);
  const EdgeId e12 = builder.AddArc(1, 2);
  const EdgeId e02 = builder.AddArc(0, 2);
  Digraph g = builder.Build();
  std::vector<double> weights(3);
  weights[static_cast<std::size_t>(e01)] = 0.1;
  weights[static_cast<std::size_t>(e12)] = 0.1;
  weights[static_cast<std::size_t>(e02)] = 5.0;
  WeightedSsspResult sssp = Dijkstra(g, 0, weights);
  EXPECT_DOUBLE_EQ(sssp.dist[2], 0.2);
  auto path = RecoverPath(g, sssp, 0, 2);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->vertices, (std::vector<VertexId>{0, 1, 2}));
}

TEST(DijkstraTest, RecoverPathUnreachable) {
  DigraphBuilder builder(2);
  Digraph g = builder.Build();
  std::vector<double> weights;
  WeightedSsspResult sssp = Dijkstra(g, 0, weights);
  EXPECT_FALSE(RecoverPath(g, sssp, 0, 1).has_value());
}

TEST(IsSimplePathTest, RejectsRepeatsGapsAndEmpty) {
  DigraphBuilder builder(3);
  builder.AddArc(0, 1);
  builder.AddArc(1, 2);
  Digraph g = builder.Build();
  Path ok;
  ok.vertices = {0, 1, 2};
  EXPECT_TRUE(IsSimplePath(g, ok));
  Path repeat;
  repeat.vertices = {0, 1, 0};
  EXPECT_FALSE(IsSimplePath(g, repeat));
  Path gap;
  gap.vertices = {0, 2};
  EXPECT_FALSE(IsSimplePath(g, gap));
  Path empty;
  EXPECT_FALSE(IsSimplePath(g, empty));
}

}  // namespace
}  // namespace tdmd::graph
