#include "core/dynamic.hpp"

#include <gtest/gtest.h>

#include "core/gtp.hpp"
#include "core/objective.hpp"
#include "test_util.hpp"
#include "topology/generators.hpp"

namespace tdmd::core {
namespace {

graph::Digraph TestNetwork(std::uint64_t seed) {
  Rng rng(seed);
  return topology::Waxman(20, 0.5, 0.4, rng);
}

DynamicOptions DefaultOptions() {
  DynamicOptions options;
  options.k = 6;
  options.lambda = 0.5;
  return options;
}

TEST(DynamicPlacerTest, EmptyEpochIsTrivial) {
  DynamicPlacer placer(TestNetwork(1), DefaultOptions());
  const EpochReport report = placer.Step({}, {});
  EXPECT_TRUE(report.feasible);
  EXPECT_EQ(report.active_flows, 0);
  EXPECT_EQ(report.moves, 0u);
}

TEST(DynamicPlacerTest, FirstArrivalsGetCovered) {
  graph::Digraph network = TestNetwork(2);
  DynamicPlacer placer(network, DefaultOptions());
  Rng rng(3);
  ChurnModel churn;
  const traffic::FlowSet arrivals = DrawArrivals(network, churn, rng);
  ASSERT_FALSE(arrivals.empty());
  const EpochReport report = placer.Step(arrivals, {});
  EXPECT_TRUE(report.feasible);
  EXPECT_EQ(report.active_flows,
            static_cast<FlowId>(arrivals.size()));
  EXPECT_GT(report.moves, 0u);  // first plan requires placements
  EXPECT_LE(placer.deployment().size(), 6u);
}

TEST(DynamicPlacerTest, DeparturesShrinkTheFlowSet) {
  graph::Digraph network = TestNetwork(4);
  DynamicPlacer placer(network, DefaultOptions());
  Rng rng(5);
  ChurnModel churn;
  churn.arrival_count = 8;
  placer.Step(DrawArrivals(network, churn, rng), {});
  ASSERT_EQ(placer.active_flows().size(), 8u);
  const EpochReport report = placer.Step({}, {0, 2, 4, 4, 99});
  EXPECT_EQ(report.active_flows, 5);  // 3 distinct valid departures
  EXPECT_TRUE(report.feasible);
}

TEST(DynamicPlacerTest, ZeroThresholdNeverWorseThanResolve) {
  // With no hysteresis the placer adopts the re-solve whenever it is at
  // least as good — so the maintained plan is never *worse* than the
  // from-scratch reference.  (It can be strictly better: the patched
  // historical plan sometimes beats a fresh greedy run.)
  graph::Digraph network = TestNetwork(6);
  DynamicOptions options = DefaultOptions();
  options.move_threshold = 0.0;
  DynamicPlacer placer(network, options);
  Rng rng(7);
  ChurnModel churn;
  for (int epoch = 0; epoch < 10; ++epoch) {
    const traffic::FlowSet arrivals = DrawArrivals(network, churn, rng);
    const std::vector<std::size_t> departures =
        DrawDepartures(placer.active_flows().size(), churn, rng);
    const EpochReport report = placer.Step(arrivals, departures);
    EXPECT_TRUE(report.feasible);
    EXPECT_LE(report.maintained_bandwidth,
              report.resolve_bandwidth + 1e-9)
        << "epoch " << epoch;
  }
}

TEST(DynamicPlacerTest, HighThresholdFreezesTheDeployment) {
  graph::Digraph network = TestNetwork(8);
  DynamicOptions options = DefaultOptions();
  options.move_threshold = 1e9;  // never worth moving
  DynamicPlacer placer(network, options);
  Rng rng(9);
  ChurnModel churn;
  placer.Step(DrawArrivals(network, churn, rng), {});
  const auto frozen = placer.deployment().SortedVertices();
  std::size_t patch_moves = 0;
  for (int epoch = 0; epoch < 8; ++epoch) {
    const EpochReport report =
        placer.Step(DrawArrivals(network, churn, rng),
                    DrawDepartures(placer.active_flows().size(), churn,
                                   rng));
    EXPECT_TRUE(report.feasible);
    EXPECT_FALSE(report.adopted_resolve);
    patch_moves += report.moves;
  }
  // The original boxes never move; only feasibility patches add boxes.
  for (VertexId v : frozen) {
    EXPECT_TRUE(placer.deployment().Contains(v));
  }
  EXPECT_LE(placer.deployment().size(), options.k);
  (void)patch_moves;
}

TEST(DynamicPlacerTest, ThresholdTradesMovesForBandwidth) {
  // Across thresholds, total moves decrease while total maintained
  // bandwidth (regret) increases — the stability/optimality trade-off.
  graph::Digraph network = TestNetwork(10);
  ChurnModel churn;
  churn.arrival_count = 6;
  auto run = [&](double threshold) {
    DynamicOptions options = DefaultOptions();
    options.move_threshold = threshold;
    DynamicPlacer placer(network, options);
    Rng rng(11);
    std::size_t moves = 0;
    double bandwidth = 0.0;
    for (int epoch = 0; epoch < 12; ++epoch) {
      const EpochReport report =
          placer.Step(DrawArrivals(network, churn, rng),
                      DrawDepartures(placer.active_flows().size(), churn,
                                     rng));
      moves += report.moves;
      bandwidth += report.maintained_bandwidth;
    }
    return std::pair<std::size_t, double>(moves, bandwidth);
  };
  const auto [eager_moves, eager_bw] = run(0.0);
  const auto [lazy_moves, lazy_bw] = run(1e9);
  EXPECT_LE(lazy_moves, eager_moves);
  EXPECT_GE(lazy_bw + 1e-9, eager_bw);
}

TEST(DynamicPlacerTest, CustomSolverIsUsed) {
  graph::Digraph network = TestNetwork(12);
  DynamicOptions options = DefaultOptions();
  int solver_calls = 0;
  options.solver = [&solver_calls](const Instance& instance) {
    ++solver_calls;
    GtpOptions gtp;
    gtp.max_middleboxes = 6;
    gtp.feasibility_aware = true;
    return Gtp(instance, gtp);
  };
  DynamicPlacer placer(network, options);
  Rng rng(13);
  ChurnModel churn;
  placer.Step(DrawArrivals(network, churn, rng), {});
  placer.Step(DrawArrivals(network, churn, rng), {});
  EXPECT_EQ(solver_calls, 2);
}

TEST(ChurnModelTest, ArrivalsAreValidFlows) {
  graph::Digraph network = TestNetwork(14);
  Rng rng(15);
  ChurnModel churn;
  churn.arrival_count = 10;
  const traffic::FlowSet arrivals = DrawArrivals(network, churn, rng);
  EXPECT_EQ(arrivals.size(), 10u);
  EXPECT_TRUE(traffic::AllFlowsValid(network, arrivals));
  for (const traffic::Flow& f : arrivals) {
    EXPECT_EQ(f.dst, churn.destination);
  }
}

TEST(ChurnModelTest, DeparturesRespectProbability) {
  Rng rng(17);
  ChurnModel churn;
  churn.departure_probability = 0.25;
  std::size_t total = 0;
  for (int trial = 0; trial < 100; ++trial) {
    total += DrawDepartures(40, churn, rng).size();
  }
  // E = 100 * 40 * 0.25 = 1000; allow generous slack.
  EXPECT_NEAR(static_cast<double>(total), 1000.0, 150.0);
}

}  // namespace
}  // namespace tdmd::core
