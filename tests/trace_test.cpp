#include "traffic/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace tdmd::traffic {
namespace {

TraceParams SmallTrace() {
  TraceParams params;
  params.duration_s = 20.0;
  params.flow_arrival_rate = 25.0;
  return params;
}

TEST(TraceTest, PacketsSortedAndWithinHorizon) {
  Rng rng(1);
  const PacketTrace trace = GenerateTrace(SmallTrace(), rng);
  ASSERT_FALSE(trace.packets.empty());
  EXPECT_GT(trace.num_flows, 0);
  for (std::size_t i = 1; i < trace.packets.size(); ++i) {
    EXPECT_LE(trace.packets[i - 1].timestamp_s,
              trace.packets[i].timestamp_s);
  }
  for (const PacketRecord& record : trace.packets) {
    EXPECT_GE(record.timestamp_s, 0.0);
    EXPECT_LT(record.timestamp_s, trace.duration_s);
    EXPECT_TRUE(record.bytes == 64 || record.bytes == 1500);
    EXPECT_GE(record.flow_key, 0);
    EXPECT_LT(record.flow_key, trace.num_flows);
  }
}

TEST(TraceTest, DeterministicGivenSeed) {
  Rng a(7), b(7);
  const PacketTrace t1 = GenerateTrace(SmallTrace(), a);
  const PacketTrace t2 = GenerateTrace(SmallTrace(), b);
  ASSERT_EQ(t1.packets.size(), t2.packets.size());
  EXPECT_EQ(t1.num_flows, t2.num_flows);
  for (std::size_t i = 0; i < t1.packets.size(); ++i) {
    EXPECT_EQ(t1.packets[i].flow_key, t2.packets[i].flow_key);
    EXPECT_DOUBLE_EQ(t1.packets[i].timestamp_s, t2.packets[i].timestamp_s);
  }
}

TEST(TraceTest, FlowArrivalCountNearPoissonMean) {
  Rng rng(3);
  TraceParams params = SmallTrace();
  params.duration_s = 40.0;
  params.flow_arrival_rate = 30.0;
  const PacketTrace trace = GenerateTrace(params, rng);
  // Poisson(1200): stddev ~ 35, allow 5 sigma.
  EXPECT_NEAR(trace.num_flows, 1200, 175);
}

TEST(TraceTest, MaxPacketsCapRespected) {
  Rng rng(5);
  TraceParams params = SmallTrace();
  params.max_packets = 500;
  const PacketTrace trace = GenerateTrace(params, rng);
  EXPECT_LE(trace.packets.size(), 500u);
}

TEST(AggregateTest, BytesSumToTraceTotal) {
  Rng rng(9);
  const PacketTrace trace = GenerateTrace(SmallTrace(), rng);
  const std::vector<std::int64_t> bytes = AggregateFlowBytes(trace);
  std::int64_t from_flows = 0;
  for (std::int64_t b : bytes) from_flows += b;
  std::int64_t from_packets = 0;
  for (const PacketRecord& record : trace.packets) {
    from_packets += record.bytes;
  }
  EXPECT_EQ(from_flows, from_packets);
}

TEST(QuantizeTest, RatesWithinBounds) {
  Rng rng(11);
  const PacketTrace trace = GenerateTrace(SmallTrace(), rng);
  const std::vector<Rate> rates =
      QuantizeRates(AggregateFlowBytes(trace), trace.duration_s, 40);
  ASSERT_FALSE(rates.empty());
  for (Rate r : rates) {
    EXPECT_GE(r, 1);
    EXPECT_LE(r, 40);
  }
}

TEST(QuantizeTest, EmptyAndZeroInputs) {
  EXPECT_TRUE(QuantizeRates({}, 10.0, 40).empty());
  EXPECT_TRUE(QuantizeRates({0, 0}, 10.0, 40).empty());
}

TEST(PipelineTest, DerivedDistributionHasMiceAndElephants) {
  // The property the evaluation depends on: the trace-derived rate
  // distribution has a mice-dominated body and a non-empty heavy tail —
  // the same shape RateDistribution samples directly.
  Rng rng(13);
  TraceParams params = SmallTrace();
  params.duration_s = 60.0;
  const PacketTrace trace = GenerateTrace(params, rng);
  const std::vector<Rate> rates =
      QuantizeRates(AggregateFlowBytes(trace), trace.duration_s, 40);
  const RateHistogram histogram = BuildHistogram(rates, 40);
  ASSERT_GT(histogram.TotalFlows(), 300u);
  // Mice: most flows in the bottom fifth of the rate range.
  EXPECT_GT(histogram.CumulativeFraction(8), 0.5);
  // Elephants: a visible minority at the cap.
  const double heavy = 1.0 - histogram.CumulativeFraction(20);
  EXPECT_GT(heavy, 0.01);
  EXPECT_LT(heavy, 0.4);
}

TEST(HistogramTest, CountsAndCumulative) {
  const RateHistogram histogram = BuildHistogram({1, 1, 2, 5, 5, 5}, 5);
  EXPECT_EQ(histogram.TotalFlows(), 6u);
  EXPECT_EQ(histogram.counts[0], 2u);
  EXPECT_EQ(histogram.counts[4], 3u);
  EXPECT_DOUBLE_EQ(histogram.CumulativeFraction(1), 2.0 / 6.0);
  EXPECT_DOUBLE_EQ(histogram.CumulativeFraction(2), 3.0 / 6.0);
  EXPECT_DOUBLE_EQ(histogram.CumulativeFraction(5), 1.0);
  EXPECT_DOUBLE_EQ(histogram.CumulativeFraction(99), 1.0);
}

TEST(HistogramTest, EmptyHistogram) {
  const RateHistogram histogram = BuildHistogram({}, 10);
  EXPECT_EQ(histogram.TotalFlows(), 0u);
  EXPECT_DOUBLE_EQ(histogram.CumulativeFraction(5), 0.0);
}

TEST(HistogramDeathTest, OutOfRangeRateAborts) {
  EXPECT_DEATH(BuildHistogram({0}, 5), "outside");
  EXPECT_DEATH(BuildHistogram({9}, 5), "outside");
}

}  // namespace
}  // namespace tdmd::traffic
