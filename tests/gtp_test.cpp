#include "core/gtp.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/brute_force.hpp"
#include "core/objective.hpp"
#include "test_util.hpp"

namespace tdmd::core {
namespace {

TEST(GtpTest, UnbudgetedRunsToFeasibility) {
  Instance instance = test::PaperInstance();
  PlacementResult result = Gtp(instance);
  EXPECT_TRUE(result.feasible);
  EXPECT_TRUE(result.allocation.AllServed());
  EXPECT_LE(result.bandwidth, instance.UnprocessedBandwidth());
  EXPECT_GE(result.bandwidth, instance.MinimumPossibleBandwidth() - 1e-9);
}

TEST(GtpTest, GreedyPicksHighestGainFirst) {
  // On the paper tree the best single vertex is v7 (gain
  // 0.5 * 5 * 3 = 7.5 from f3); GTP must deploy it first.
  Instance instance = test::PaperInstance();
  PlacementResult result = Gtp(instance);
  ASSERT_FALSE(result.deployment.vertices().empty());
  EXPECT_EQ(result.deployment.vertices().front(), test::kV7);
}

TEST(GtpTest, BudgetedStopsAtK) {
  Instance instance = test::PaperInstance();
  GtpOptions options;
  options.max_middleboxes = 2;
  PlacementResult result = Gtp(instance, options);
  EXPECT_LE(result.deployment.size(), 2u);
}

TEST(GtpTest, BudgetOneOnPaperTreeIsInfeasibleGreedily) {
  // The only feasible single-vertex plan is {v1}, but greedy takes the
  // max-gain v7 — the paper's motivation for the feasibility trade-off.
  Instance instance = test::PaperInstance();
  GtpOptions options;
  options.max_middleboxes = 1;
  PlacementResult result = Gtp(instance, options);
  EXPECT_FALSE(result.feasible);
  EXPECT_EQ(result.deployment.vertices().front(), test::kV7);
}

TEST(GtpTest, FeasibilityAwareBudgetOnePicksRoot) {
  Instance instance = test::PaperInstance();
  GtpOptions options;
  options.max_middleboxes = 1;
  options.feasibility_aware = true;
  PlacementResult result = Gtp(instance, options);
  EXPECT_TRUE(result.feasible);
  EXPECT_EQ(result.deployment.SortedVertices(),
            (std::vector<VertexId>{test::kV1}));
  EXPECT_DOUBLE_EQ(result.bandwidth, 24.0);
}

TEST(GtpTest, FeasibilityAwareMatchesPlainWhenBudgetIsLoose) {
  Rng rng(3);
  Instance instance = test::MakeRandomGeneralCase(20, 0.5, 15, rng);
  GtpOptions plain;
  plain.max_middleboxes = 12;
  GtpOptions aware = plain;
  aware.feasibility_aware = true;
  const PlacementResult a = Gtp(instance, plain);
  const PlacementResult b = Gtp(instance, aware);
  if (a.feasible) {
    EXPECT_EQ(a.deployment.SortedVertices(), b.deployment.SortedVertices());
  }
}

TEST(GtpTest, LazyMatchesPlainExactly) {
  // CELF is exact under submodularity; same deployment, same bandwidth.
  for (std::uint64_t seed : {1ULL, 7ULL, 42ULL, 99ULL}) {
    Rng rng(seed);
    const double lambda = rng.NextDouble(0.0, 0.9);
    Instance instance = test::MakeRandomGeneralCase(24, lambda, 18, rng);
    GtpOptions plain;
    GtpOptions lazy;
    lazy.lazy = true;
    const PlacementResult a = Gtp(instance, plain);
    const PlacementResult b = Gtp(instance, lazy);
    EXPECT_EQ(a.deployment.SortedVertices(), b.deployment.SortedVertices())
        << "seed " << seed;
    EXPECT_NEAR(a.bandwidth, b.bandwidth, 1e-9);
  }
}

TEST(GtpTest, LazyUsesFewerOracleCalls) {
  Rng rng(11);
  Instance instance = test::MakeRandomGeneralCase(40, 0.5, 30, rng);
  GtpOptions plain;
  GtpOptions lazy;
  lazy.lazy = true;
  const PlacementResult a = Gtp(instance, plain);
  const PlacementResult b = Gtp(instance, lazy);
  if (a.deployment.size() > 2) {
    EXPECT_LT(b.oracle_calls, a.oracle_calls);
  }
}

TEST(GtpTest, ParallelOracleMatchesSerial) {
  Rng rng(13);
  Instance instance = test::MakeRandomGeneralCase(30, 0.4, 20, rng);
  parallel::ThreadPool pool(4);
  GtpOptions serial;
  GtpOptions parallel_opts;
  parallel_opts.pool = &pool;
  const PlacementResult a = Gtp(instance, serial);
  const PlacementResult b = Gtp(instance, parallel_opts);
  EXPECT_EQ(a.deployment.SortedVertices(), b.deployment.SortedVertices());
  EXPECT_NEAR(a.bandwidth, b.bandwidth, 1e-9);
}

TEST(GtpTest, SaturationStopsUselessDeployments) {
  // Once every flow is served at its source, more boxes add nothing.
  Instance instance = test::PaperInstance();
  GtpOptions options;
  options.max_middleboxes = 8;  // more than the 4 sources
  PlacementResult result = Gtp(instance, options);
  EXPECT_LE(result.deployment.size(), 4u);
  EXPECT_DOUBLE_EQ(result.bandwidth, 12.0);  // lambda * 24
}

TEST(GtpTest, EmptyFlowSetDeploysNothing) {
  const graph::Tree tree = test::PaperTree();
  Instance instance = MakeTreeInstance(tree, {}, 0.5);
  PlacementResult result = Gtp(instance);
  EXPECT_TRUE(result.feasible);
  EXPECT_TRUE(result.deployment.empty());
  EXPECT_DOUBLE_EQ(result.bandwidth, 0.0);
}

TEST(GtpTest, LambdaOneStillServesAllFlows) {
  // A no-op middlebox (lambda = 1) saves no bandwidth, but Algorithm 1
  // must still produce a feasible plan (flows *require* processing).
  const graph::Tree tree = test::PaperTree();
  Instance instance =
      MakeTreeInstance(tree, test::PaperFlows(tree), 1.0);
  PlacementResult result = Gtp(instance);
  EXPECT_TRUE(result.feasible);
  EXPECT_DOUBLE_EQ(result.bandwidth, 24.0);
}

class GtpApproximationRatio : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(GtpApproximationRatio, DecrementWithinOneMinusOneOverE) {
  // Theorem 3: for the k that GTP derives, its decrement is at least
  // (1 - 1/e) of the best decrement achievable with k middleboxes.
  Rng rng(GetParam());
  const double lambda = rng.NextDouble(0.0, 0.9);
  Instance instance = test::MakeRandomGeneralCase(14, lambda, 8, rng);
  PlacementResult greedy = Gtp(instance);
  const std::size_t k = greedy.deployment.size();
  if (k == 0) return;  // empty flow set edge case
  const Bandwidth optimal = BruteForceMaxDecrement(instance, k);
  const Bandwidth achieved = EvaluateDecrement(instance, greedy.deployment);
  constexpr double kRatio = 1.0 - 1.0 / 2.718281828459045;
  EXPECT_GE(achieved + 1e-9, kRatio * optimal)
      << "k=" << k << " achieved=" << achieved << " opt=" << optimal;
}

INSTANTIATE_TEST_SUITE_P(Seeds, GtpApproximationRatio,
                         ::testing::Range<std::uint64_t>(1, 31));

class GtpFeasibilityProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GtpFeasibilityProperty, UnbudgetedAlwaysFeasible) {
  Rng rng(GetParam());
  const double lambda = rng.NextDouble(0.0, 1.0);
  Instance instance = test::MakeRandomGeneralCase(25, lambda, 20, rng);
  PlacementResult result = Gtp(instance);
  EXPECT_TRUE(result.feasible);
  EXPECT_NEAR(result.bandwidth,
              EvaluateBandwidth(instance, result.deployment), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GtpFeasibilityProperty,
                         ::testing::Range<std::uint64_t>(50, 70));

}  // namespace
}  // namespace tdmd::core
