// Shared fixtures: the paper's worked example (Fig. 5) and random
// instance builders used by property tests.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "core/instance.hpp"
#include "graph/tree.hpp"
#include "topology/generators.hpp"
#include "traffic/flow.hpp"
#include "traffic/generator.hpp"

namespace tdmd::test {

// Paper Fig. 5 tree, 0-based ids matching the paper's v1..v8 as 0..7:
//   v1(0) root; children v2(1), v3(2); v2's children v4(3), v5(4);
//   v3's child v6(5); v6's children v7(6), v8(7).
// Flows: f1 @ v4 rate 2, f4 @ v5 rate 1, f3 @ v7 rate 5, f2 @ v8 rate 1.
// lambda = 0.5.
inline constexpr VertexId kV1 = 0, kV2 = 1, kV3 = 2, kV4 = 3, kV5 = 4,
                          kV6 = 5, kV7 = 6, kV8 = 7;

inline graph::Tree PaperTree() {
  return graph::Tree(std::vector<VertexId>{
      kInvalidVertex, kV1, kV1, kV2, kV2, kV3, kV6, kV6});
}

inline traffic::FlowSet PaperFlows(const graph::Tree& tree) {
  auto make_flow = [&](VertexId src, Rate rate) {
    traffic::Flow f;
    f.src = src;
    f.dst = tree.root();
    f.rate = rate;
    f.path.vertices = tree.PathToRoot(src);
    return f;
  };
  return {make_flow(kV4, 2), make_flow(kV5, 1), make_flow(kV7, 5),
          make_flow(kV8, 1)};
}

inline core::Instance PaperInstance() {
  const graph::Tree tree = PaperTree();
  return core::MakeTreeInstance(tree, PaperFlows(tree), /*lambda=*/0.5);
}

/// Random tree instance for property tests: bounded-branching tree with
/// `size` vertices, flows on every leaf plus extras, small integer rates
/// so brute force and the DP stay fast.
struct RandomTreeCase {
  graph::Tree tree;
  core::Instance instance;
};

inline RandomTreeCase MakeRandomTreeCase(VertexId size, double lambda,
                                         Rng& rng) {
  graph::Tree tree = topology::RandomBoundedTree(size, 3, rng);
  traffic::FlowSet flows;
  for (VertexId leaf : tree.Leaves()) {
    if (!rng.NextBool(0.8)) continue;  // some leaves stay silent
    traffic::Flow f;
    f.src = leaf;
    f.dst = tree.root();
    f.rate = rng.NextInt(1, 6);
    f.path.vertices = tree.PathToRoot(leaf);
    flows.push_back(std::move(f));
  }
  if (flows.empty()) {
    traffic::Flow f;
    f.src = tree.Leaves().front();
    f.dst = tree.root();
    f.rate = 1;
    f.path.vertices = tree.PathToRoot(f.src);
    flows.push_back(std::move(f));
  }
  core::Instance instance = core::MakeTreeInstance(tree, flows, lambda);
  return RandomTreeCase{std::move(tree), std::move(instance)};
}

/// Random general-topology instance: Waxman graph, flows to vertex 0.
inline core::Instance MakeRandomGeneralCase(VertexId size, double lambda,
                                            std::size_t num_flows,
                                            Rng& rng) {
  graph::Digraph g = topology::Waxman(size, 0.6, 0.5, rng);
  traffic::FlowSet flows;
  while (flows.size() < num_flows) {
    const auto src = static_cast<VertexId>(
        rng.NextBounded(static_cast<std::uint64_t>(size - 1)) + 1);
    auto path = graph::ShortestHopPath(g, src, 0);
    if (!path.has_value() || path->NumEdges() == 0) continue;
    traffic::Flow f;
    f.src = src;
    f.dst = 0;
    f.rate = rng.NextInt(1, 8);
    f.path = std::move(*path);
    flows.push_back(std::move(f));
  }
  return core::Instance(std::move(g), std::move(flows), lambda);
}

}  // namespace tdmd::test
