#include "core/deployment.hpp"

#include <gtest/gtest.h>

#include "core/coverage.hpp"
#include "test_util.hpp"

namespace tdmd::core {
namespace {

TEST(DeploymentTest, AddRemoveContains) {
  Deployment plan(8);
  EXPECT_TRUE(plan.empty());
  plan.Add(3);
  plan.Add(5);
  EXPECT_EQ(plan.size(), 2u);
  EXPECT_TRUE(plan.Contains(3));
  EXPECT_TRUE(plan.Contains(5));
  EXPECT_FALSE(plan.Contains(4));
  plan.Remove(3);
  EXPECT_FALSE(plan.Contains(3));
  EXPECT_EQ(plan.size(), 1u);
}

TEST(DeploymentTest, InsertionOrderPreservedSortedSeparate) {
  Deployment plan(8, {7, 2, 5});
  EXPECT_EQ(plan.vertices(), (std::vector<VertexId>{7, 2, 5}));
  EXPECT_EQ(plan.SortedVertices(), (std::vector<VertexId>{2, 5, 7}));
}

TEST(DeploymentTest, EqualityIsSetEquality) {
  Deployment a(8, {1, 4});
  Deployment b(8, {4, 1});
  Deployment c(8, {1, 5});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(DeploymentTest, ToStringSortedForm) {
  Deployment plan(8, {5, 1});
  EXPECT_EQ(plan.ToString(), "{v1, v5}");
  EXPECT_EQ(Deployment(8).ToString(), "{}");
}

TEST(DeploymentTest, ContainsOutOfRangeIsFalse) {
  Deployment plan(4, {1});
  EXPECT_FALSE(plan.Contains(-1));
  EXPECT_FALSE(plan.Contains(4));
  EXPECT_FALSE(plan.Contains(100));
}

TEST(DeploymentDeathTest, DoubleAddAborts) {
  // Section 3.1: at most one middlebox per vertex.
  Deployment plan(4, {1});
  EXPECT_DEATH(plan.Add(1), "already deployed");
}

TEST(DeploymentDeathTest, RemoveAbsentAborts) {
  Deployment plan(4);
  EXPECT_DEATH(plan.Remove(2), "not deployed");
}

TEST(DeploymentDeathTest, AddOutOfRangeAborts) {
  Deployment plan(4);
  EXPECT_DEATH(plan.Add(9), "out of range");
}

TEST(CoverageTest, EmptyResidualAlwaysCoverable) {
  Instance instance = test::PaperInstance();
  std::vector<char> all_served(4, 1);
  Deployment plan(instance.num_vertices());
  EXPECT_TRUE(
      ResidualCoverable(instance, all_served, plan, kInvalidVertex, 0));
}

TEST(CoverageTest, ZeroBudgetWithResidualFails) {
  Instance instance = test::PaperInstance();
  std::vector<char> none_served(4, 0);
  Deployment plan(instance.num_vertices());
  EXPECT_FALSE(
      ResidualCoverable(instance, none_served, plan, kInvalidVertex, 0));
}

TEST(CoverageTest, CandidateItselfCounts) {
  // Choosing the root covers everything: residual empty even with zero
  // remaining budget.
  Instance instance = test::PaperInstance();
  std::vector<char> none_served(4, 0);
  Deployment plan(instance.num_vertices());
  EXPECT_TRUE(ResidualCoverable(instance, none_served, plan, test::kV1, 0));
  // v7 only covers f3; three flows remain for zero budget.
  EXPECT_FALSE(
      ResidualCoverable(instance, none_served, plan, test::kV7, 0));
  // ... but one more box (v2 would do) suffices.
  EXPECT_TRUE(ResidualCoverable(instance, none_served, plan, test::kV7, 1));
}

TEST(CoverageTest, DeployedVerticesExcludedFromCover) {
  // With v1 already deployed, the cover may not reuse it; f1/f4's only
  // other shared vertex is v2.
  Instance instance = test::PaperInstance();
  std::vector<char> served{0, 0, 1, 1};  // f3, f2 served
  Deployment plan(instance.num_vertices());
  plan.Add(test::kV1);
  EXPECT_TRUE(
      ResidualCoverable(instance, served, plan, kInvalidVertex, 1));
  EXPECT_FALSE(
      ResidualCoverable(instance, served, plan, kInvalidVertex, 0));
}

}  // namespace
}  // namespace tdmd::core
