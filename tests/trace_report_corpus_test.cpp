// Malformed-trace corpus (ISSUE satellite): trace-report and
// quality-report must reject truncated, empty and garbage inputs with a
// one-line diagnostic instead of silently reporting zeros, and a genuine
// WriteChromeTrace stream must round-trip through both builders.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/quality_report.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "obs/trace_report.hpp"

namespace tdmd::obs {
namespace {

TraceReport Trace(const std::string& text) {
  std::istringstream is(text);
  return BuildTraceReport(is);
}

QualityReport Quality(const std::string& text) {
  std::istringstream is(text);
  return BuildQualityReport(is);
}

std::string SampleEvent(std::uint64_t epoch, double ratio) {
  return R"({"name": "quality-sample", "ph": "i", "ts": 1, "tid": 0, )"
         R"("args": {"arg": )" +
         std::to_string(PackQualitySampleArg(epoch, ratio)) + "}}";
}

// Every corpus entry must fail BOTH builders with a diagnostic that
// mentions what went wrong; none may come back ok with zeroed stats.
struct CorpusCase {
  const char* label;
  const char* text;
  const char* diagnostic;  // substring both errors must contain
};

TEST(TraceReportCorpusTest, MalformedInputsAreRejectedWithDiagnostics) {
  const CorpusCase corpus[] = {
      {"empty file", "", "traceEvents"},
      {"garbage", "complete garbage \x01\x02 not json", "traceEvents"},
      {"wrong value type", R"({"traceEvents": {}})", "array"},
      {"truncated event",
       R"({"traceEvents": [{"name": "epoch", "ph": "X", "ts": 1)",
       "malformed"},
      {"missing fields", R"({"traceEvents": [{"ph": "i", "ts": 3}]})",
       "missing name/ph/ts"},
      {"span without dur",
       R"({"traceEvents": [{"name": "epoch", "ph": "X", "ts": 1}]})",
       "dur"},
      {"no events", R"({"traceEvents": []})", "no events"},
  };
  for (const CorpusCase& c : corpus) {
    const TraceReport trace = Trace(c.text);
    EXPECT_FALSE(trace.ok) << c.label;
    EXPECT_NE(trace.error.find(c.diagnostic), std::string::npos)
        << c.label << ": " << trace.error;
    EXPECT_EQ(trace.num_events, 0u) << c.label;

    // quality-report shares the structural parser, except that a span
    // without dur is fine for it (it only decodes instants).
    if (std::string(c.label) == "span without dur") continue;
    const QualityReport quality = Quality(c.text);
    EXPECT_FALSE(quality.ok) << c.label;
    EXPECT_NE(quality.error.find(c.diagnostic), std::string::npos)
        << c.label << ": " << quality.error;
    EXPECT_EQ(quality.num_samples, 0u) << c.label;
  }
}

TEST(TraceReportCorpusTest, QualityReportRejectsTraceWithoutSamples) {
  const std::string text =
      R"({"traceEvents": [{"name": "epoch", "ph": "i", "ts": 1}]})";
  EXPECT_TRUE(Trace(text).ok);  // structurally fine for trace-report
  const QualityReport quality = Quality(text);
  EXPECT_FALSE(quality.ok);
  EXPECT_NE(quality.error.find("no quality-sample events"),
            std::string::npos);
}

TEST(TraceReportCorpusTest, QualityReportRejectsBrokenQualityEvents) {
  const QualityReport no_arg = Quality(
      R"({"traceEvents": [{"name": "quality-sample", "ph": "i", "ts": 1}]})");
  EXPECT_FALSE(no_arg.ok);
  EXPECT_NE(no_arg.error.find("missing args.arg"), std::string::npos);

  // kind 3 does not exist; the packed arg must be rejected, not mapped.
  const std::string bogus_kind =
      R"({"traceEvents": [)" + SampleEvent(1, 1.0) +
      R"(, {"name": "quality-alert", "ph": "i", "ts": 2, "args": )"
      R"({"arg": 7}}]})";
  const QualityReport alert = Quality(bogus_kind);
  EXPECT_FALSE(alert.ok);
  EXPECT_NE(alert.error.find("unknown kind"), std::string::npos);
}

TEST(TraceReportCorpusTest, HandWrittenQualityTraceRoundTrips) {
  QualityAlert raised;
  raised.kind = QualityAlertKind::kQualityGapCusum;
  raised.raised = true;
  raised.epoch = 2;
  QualityAlert cleared = raised;
  cleared.raised = false;
  cleared.epoch = 3;
  const std::string text =
      R"({"traceEvents": [)" + SampleEvent(1, 1.0) + ", " +
      SampleEvent(2, 0.25) + ", " + SampleEvent(3, 0.75) +
      R"(, {"name": "quality-alert", "ph": "i", "ts": 2, "args": {"arg": )" +
      std::to_string(PackQualityAlertArg(raised)) +
      R"(}}, {"name": "quality-alert", "ph": "i", "ts": 3, "args": {"arg": )" +
      std::to_string(PackQualityAlertArg(cleared)) + "}}]}";

  const QualityReport report = Quality(text);
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_EQ(report.num_samples, 3u);
  EXPECT_EQ(report.num_alert_events, 2u);
  EXPECT_EQ(report.below_floor, 1u);
  EXPECT_NEAR(report.min_ratio, 0.25, 1e-6);
  EXPECT_NEAR(report.last_ratio, 0.75, 1e-6);
  ASSERT_EQ(report.alerts.size(), 2u);
  EXPECT_EQ(report.alerts[0].kind, "quality-gap-cusum");
  EXPECT_TRUE(report.alerts[0].raised);
  EXPECT_FALSE(report.alerts[1].raised);

  std::ostringstream os;
  WriteQualityReport(os, report);
  EXPECT_NE(os.str().find("3 samples"), std::string::npos);
  EXPECT_NE(os.str().find("RAISED"), std::string::npos);
  EXPECT_NE(os.str().find("<floor"), std::string::npos);
}

TEST(TraceReportCorpusTest, RealChromeTraceRoundTripsBothBuilders) {
  Tracer tracer;
  InstallTracer(&tracer);
  TraceInstant(TracePhase::kQualitySample, PackQualitySampleArg(5, 0.8));
  QualityAlert alert;
  alert.kind = QualityAlertKind::kAdoptionStalenessBurnRate;
  alert.raised = true;
  alert.epoch = 5;
  TraceInstant(TracePhase::kQualityAlert, PackQualityAlertArg(alert));
  InstallTracer(nullptr);
  const TraceDrainResult drained = tracer.Drain();

  std::ostringstream os;
  WriteChromeTrace(os, drained);

  const TraceReport trace = Trace(os.str());
  ASSERT_TRUE(trace.ok) << trace.error;
  EXPECT_EQ(trace.num_events, 2u);

  const QualityReport quality = Quality(os.str());
  ASSERT_TRUE(quality.ok) << quality.error;
  ASSERT_EQ(quality.num_samples, 1u);
  EXPECT_EQ(quality.points[0].epoch, 5u);
  EXPECT_NEAR(quality.points[0].ratio, 0.8, 1e-6);
  ASSERT_EQ(quality.alerts.size(), 1u);
  EXPECT_EQ(quality.alerts[0].kind, "adoption-staleness-burn-rate");
}

}  // namespace
}  // namespace tdmd::obs
