// Checkpoint/restore (DESIGN.md Section 9.4): text round trip of the
// `engine-checkpoint v1` record, byte-identical crash recovery, and
// strict rejection of corrupted records.
#include "engine/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "checkpoint_compare.hpp"
#include "engine/churn_trace.hpp"
#include "engine/engine.hpp"
#include "io/text_format.hpp"
#include "topology/generators.hpp"

namespace tdmd::engine {
namespace {

graph::Digraph TestNetwork(std::uint64_t seed, VertexId n = 20) {
  Rng rng(seed);
  return topology::Waxman(n, 0.5, 0.4, rng);
}

ChurnTrace MakeTrace(const graph::Digraph& network, std::size_t epochs,
                     std::uint64_t seed) {
  core::ChurnModel churn;
  churn.arrival_count = 6;
  churn.departure_probability = 0.3;
  Rng rng(seed);
  return BuildChurnTrace(network, churn, epochs, 0, rng);
}

/// Replays epochs [from, to) of `trace`, maintaining the client-side
/// ticket bookkeeping in `active` (which persists across engines — the
/// whole point of ticket-exact restore).
void ReplayRange(Engine& engine, const ChurnTrace& trace, std::size_t from,
                 std::size_t to, std::vector<FlowTicket>& active) {
  for (std::size_t e = from; e < to; ++e) {
    const ChurnEpoch& epoch = trace.epochs[e];
    std::vector<FlowTicket> departing;
    for (std::size_t position : epoch.departures) {
      ASSERT_LT(position, active.size());
      departing.push_back(active[position]);
    }
    for (auto it = epoch.departures.rbegin(); it != epoch.departures.rend();
         ++it) {
      active.erase(active.begin() + static_cast<std::ptrdiff_t>(*it));
    }
    const Engine::BatchResult result =
        engine.SubmitBatch(epoch.arrivals, departing);
    active.insert(active.end(), result.tickets.begin(),
                  result.tickets.end());
  }
}

std::string Serialize(const EngineCheckpoint& checkpoint,
                      bool include_histograms = true,
                      bool include_quality = true) {
  std::ostringstream oss;
  io::EngineCheckpointWriteOptions options;
  options.include_histograms = include_histograms;
  options.include_quality = include_quality;
  io::WriteEngineCheckpoint(oss, checkpoint, options);
  return oss.str();
}

using test::SerializeDeterministic;

EngineOptions SyncOptions() {
  EngineOptions options;
  options.k = 5;
  options.synchronous = true;
  return options;
}

TEST(EngineCheckpointTest, TextRoundTripIsByteExact) {
  Engine engine(TestNetwork(61), SyncOptions());
  const ChurnTrace trace = MakeTrace(engine.index().network(), 8, 71);
  std::vector<FlowTicket> active;
  ReplayRange(engine, trace, 0, trace.epochs.size(), active);

  const EngineCheckpoint checkpoint = engine.Checkpoint();
  const std::string text = Serialize(checkpoint);
  std::istringstream iss(text);
  const io::Parsed<EngineCheckpoint> parsed = io::ReadEngineCheckpoint(iss);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  // Re-serializing the parsed record reproduces the original bytes —
  // in particular the hexfloat bandwidth survives bit-exactly.
  EXPECT_EQ(Serialize(*parsed.value), text);
  EXPECT_EQ(parsed.value->maintained_bandwidth,
            checkpoint.maintained_bandwidth);
  EXPECT_EQ(parsed.value->stats.mode, checkpoint.mode);
}

// The ISSUE acceptance test: run N epochs; separately run N/2 epochs,
// checkpoint through the text format (simulating a crash + cold restart),
// restore into a fresh engine and replay the rest.  Final checkpoints —
// deployment, maintained objective, tickets, free-slot stack, counters,
// snapshot version — must be byte-identical.
TEST(EngineCheckpointTest, CrashRecoveryReplaysByteIdentically) {
  const graph::Digraph network = TestNetwork(62);
  const ChurnTrace trace = MakeTrace(network, 12, 72);
  const std::size_t half = trace.epochs.size() / 2;

  // Uninterrupted reference run.
  Engine reference(network, SyncOptions());
  std::vector<FlowTicket> reference_active;
  ReplayRange(reference, trace, 0, trace.epochs.size(), reference_active);

  // Crashed run: first half, checkpoint to text, restore, second half.
  std::string checkpoint_text;
  std::vector<FlowTicket> active;
  {
    Engine first_half(network, SyncOptions());
    ReplayRange(first_half, trace, 0, half, active);
    checkpoint_text = Serialize(first_half.Checkpoint());
  }  // first engine is gone — the text record is all that survives

  std::istringstream iss(checkpoint_text);
  const io::Parsed<EngineCheckpoint> parsed = io::ReadEngineCheckpoint(iss);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  Engine restored(network, SyncOptions());
  restored.Restore(*parsed.value);
  ReplayRange(restored, trace, half, trace.epochs.size(), active);

  // Byte-compare without the histogram section: latency samples are wall
  // times, not replayed state.  Sample *counts* are deterministic, though
  // — the restored run must keep accumulating where the first half left
  // off instead of restarting from empty.
  const EngineCheckpoint restored_cp = restored.Checkpoint();
  const EngineCheckpoint reference_cp = reference.Checkpoint();
  EXPECT_EQ(SerializeDeterministic(restored_cp),
            SerializeDeterministic(reference_cp));
  EXPECT_EQ(restored_cp.patch_histogram.count,
            reference_cp.patch_histogram.count);
  EXPECT_EQ(restored_cp.resolve_histogram.count,
            reference_cp.resolve_histogram.count);
  EXPECT_EQ(restored_cp.index_delta_histogram.count,
            reference_cp.index_delta_histogram.count);
  EXPECT_EQ(restored_cp.greedy_round_histogram.count,
            reference_cp.greedy_round_histogram.count);
  // Client-held tickets drawn after the restore match the uninterrupted
  // run's tickets (the free-slot stack round-tripped).
  EXPECT_EQ(active, reference_active);
  const auto restored_snapshot = restored.CurrentSnapshot();
  const auto reference_snapshot = reference.CurrentSnapshot();
  EXPECT_EQ(restored_snapshot->version, reference_snapshot->version);
  EXPECT_EQ(restored_snapshot->deployment.ToString(),
            reference_snapshot->deployment.ToString());
  EXPECT_EQ(restored_snapshot->bandwidth, reference_snapshot->bandwidth);
}

TEST(EngineCheckpointTest, RestoredEngineKeepsServingUnderChurn) {
  const graph::Digraph network = TestNetwork(63);
  const ChurnTrace trace = MakeTrace(network, 10, 73);
  std::vector<FlowTicket> active;
  Engine engine(network, SyncOptions());
  ReplayRange(engine, trace, 0, 5, active);
  const EngineCheckpoint checkpoint = engine.Checkpoint();

  Engine restored(network, SyncOptions());
  restored.Restore(checkpoint);
  ReplayRange(restored, trace, 5, trace.epochs.size(), active);
  EXPECT_TRUE(restored.CurrentSnapshot()->feasible);
  EXPECT_LE(restored.CurrentSnapshot()->deployment.size(),
            SyncOptions().k);
  EXPECT_EQ(restored.index().active_flows(), active.size());
}

TEST(EngineCheckpointTest, HistogramSectionRoundTrips) {
  Engine engine(TestNetwork(65), SyncOptions());
  const ChurnTrace trace = MakeTrace(engine.index().network(), 6, 75);
  std::vector<FlowTicket> active;
  ReplayRange(engine, trace, 0, trace.epochs.size(), active);

  const EngineCheckpoint checkpoint = engine.Checkpoint();
  // A synchronous engine records one patch and one index-delta sample per
  // epoch, so the section is exercised with real data.
  ASSERT_EQ(checkpoint.patch_histogram.count, trace.epochs.size());
  ASSERT_EQ(checkpoint.index_delta_histogram.count, trace.epochs.size());

  std::istringstream iss(Serialize(checkpoint));
  const io::Parsed<EngineCheckpoint> parsed = io::ReadEngineCheckpoint(iss);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(parsed.value->patch_histogram.count,
            checkpoint.patch_histogram.count);
  EXPECT_EQ(parsed.value->patch_histogram.sum,
            checkpoint.patch_histogram.sum);
  EXPECT_EQ(parsed.value->patch_histogram.buckets,
            checkpoint.patch_histogram.buckets);
  EXPECT_EQ(parsed.value->resolve_histogram.buckets,
            checkpoint.resolve_histogram.buckets);
  EXPECT_EQ(parsed.value->index_delta_histogram.buckets,
            checkpoint.index_delta_histogram.buckets);
  EXPECT_EQ(parsed.value->greedy_round_histogram.buckets,
            checkpoint.greedy_round_histogram.buckets);
}

TEST(EngineCheckpointTest, RecordWithoutHistogramSectionStillParses) {
  Engine engine(TestNetwork(66), SyncOptions());
  const ChurnTrace trace = MakeTrace(engine.index().network(), 4, 76);
  std::vector<FlowTicket> active;
  ReplayRange(engine, trace, 0, trace.epochs.size(), active);

  // A record written before the section existed (or with the section
  // omitted) restores with empty histograms rather than failing.
  std::istringstream iss(Serialize(engine.Checkpoint(), false));
  const io::Parsed<EngineCheckpoint> parsed = io::ReadEngineCheckpoint(iss);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(parsed.value->patch_histogram.count, 0u);
  EXPECT_EQ(parsed.value->resolve_histogram.count, 0u);
  EXPECT_TRUE(parsed.value->patch_histogram.buckets.empty());

  Engine restored(engine.index().network(), SyncOptions());
  restored.Restore(*parsed.value);
  EXPECT_EQ(restored.histograms().patch_ns.count(), 0u);
}

TEST(EngineCheckpointTest, CorruptHistogramSectionsAreRejected) {
  Engine engine(TestNetwork(67), SyncOptions());
  const ChurnTrace trace = MakeTrace(engine.index().network(), 4, 77);
  std::vector<FlowTicket> active;
  ReplayRange(engine, trace, 0, trace.epochs.size(), active);
  const std::string good = Serialize(engine.Checkpoint());
  ASSERT_NE(good.find("histograms 4"), std::string::npos);

  const auto reject = [](const std::string& text, const std::string& what) {
    std::istringstream iss(text);
    const io::Parsed<EngineCheckpoint> parsed =
        io::ReadEngineCheckpoint(iss);
    EXPECT_FALSE(parsed.ok()) << what;
    EXPECT_FALSE(parsed.error.empty()) << what;
    EXPECT_FALSE(parsed.value.has_value()) << what;
  };
  const auto mutate = [&good](const std::string& from,
                              const std::string& to) {
    std::string text = good;
    const std::size_t at = text.find(from);
    EXPECT_NE(at, std::string::npos) << from;
    text.replace(at, from.size(), to);
    return text;
  };

  reject(mutate("histograms 4", "histograms 3"), "wrong section count");
  reject(mutate("histogram patch", "histogram punch"),
         "unknown histogram name");
  reject(mutate("histogram resolve", "histogram patch"),
         "histograms out of order");
  // Claiming one more bucket than is present makes the parser consume the
  // next histogram header as a bucket line.
  const std::string patch_line = "histogram patch ";
  const std::size_t header = good.find(patch_line);
  ASSERT_NE(header, std::string::npos);
  const std::size_t line_end = good.find('\n', header);
  std::string inflated = good;
  inflated.replace(
      header, line_end - header,
      "histogram patch 1 50 50 50 2\nbucket 44 1");
  reject(inflated, "bucket count mismatch");
  // Structural corruption inside a histogram: an out-of-range index and a
  // total that disagrees with the advertised sample count.
  reject(mutate("histogram patch ",
                "histogram patch 1 50 50 50 1\nbucket 9999 1\n"
                "histogram patch "),
         "bucket index out of range");
  reject(mutate("histogram patch ",
                "histogram patch 2 50 50 50 1\nbucket 44 1\n"
                "histogram patch "),
         "bucket totals disagree with count");
}

TEST(EngineCheckpointTest, QualitySectionRoundTrips) {
  Engine engine(TestNetwork(68), SyncOptions());
  const ChurnTrace trace = MakeTrace(engine.index().network(), 6, 78);
  std::vector<FlowTicket> active;
  ReplayRange(engine, trace, 0, trace.epochs.size(), active);

  const EngineCheckpoint checkpoint = engine.Checkpoint();
  ASSERT_TRUE(checkpoint.has_quality);
  ASSERT_FALSE(checkpoint.quality.samples.empty());

  std::istringstream iss(Serialize(checkpoint));
  const io::Parsed<EngineCheckpoint> parsed = io::ReadEngineCheckpoint(iss);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  ASSERT_TRUE(parsed.value->has_quality);
  ASSERT_EQ(parsed.value->quality.samples.size(),
            checkpoint.quality.samples.size());
  for (std::size_t i = 0; i < checkpoint.quality.samples.size(); ++i) {
    const obs::QualitySample& want = checkpoint.quality.samples[i];
    const obs::QualitySample& got = parsed.value->quality.samples[i];
    EXPECT_EQ(got.epoch, want.epoch);
    // Primaries are hexfloats, so the derived fields the reader recomputes
    // land on identical bits.
    EXPECT_EQ(got.bandwidth, want.bandwidth);
    EXPECT_EQ(got.opt_bound, want.opt_bound);
    EXPECT_EQ(got.realized_ratio, want.realized_ratio);
    EXPECT_EQ(got.decrement, want.decrement);
  }
  EXPECT_EQ(parsed.value->quality.samples_total,
            checkpoint.quality.samples_total);
  EXPECT_EQ(parsed.value->quality_tracker.cert_valid,
            checkpoint.quality_tracker.cert_valid);
  EXPECT_EQ(parsed.value->quality_tracker.cert_bound,
            checkpoint.quality_tracker.cert_bound);
  EXPECT_EQ(parsed.value->quality_attribution.size(),
            checkpoint.quality_attribution.size());
}

// The crash-recovery drill again, but asserting the quality timeline
// itself: the restored run's final quality section must be byte-identical
// to the uninterrupted run's (ISSUE acceptance).
TEST(EngineCheckpointTest, QualityTimelineRestoresByteIdentically) {
  const graph::Digraph network = TestNetwork(69);
  const ChurnTrace trace = MakeTrace(network, 12, 79);
  const std::size_t half = trace.epochs.size() / 2;

  Engine reference(network, SyncOptions());
  std::vector<FlowTicket> reference_active;
  ReplayRange(reference, trace, 0, trace.epochs.size(), reference_active);

  std::string checkpoint_text;
  std::vector<FlowTicket> active;
  {
    Engine first_half(network, SyncOptions());
    ReplayRange(first_half, trace, 0, half, active);
    checkpoint_text = Serialize(first_half.Checkpoint());
  }
  std::istringstream iss(checkpoint_text);
  const io::Parsed<EngineCheckpoint> parsed = io::ReadEngineCheckpoint(iss);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  Engine restored(network, SyncOptions());
  restored.Restore(*parsed.value);
  ReplayRange(restored, trace, half, trace.epochs.size(), active);

  // Histograms carry wall times; everything else — including the quality
  // section with its detector accumulators — must match byte for byte.
  EXPECT_EQ(SerializeDeterministic(restored.Checkpoint()),
            SerializeDeterministic(reference.Checkpoint()));
}

TEST(EngineCheckpointTest, RecordWithoutQualitySectionStaysCompatible) {
  Engine engine(TestNetwork(70), SyncOptions());
  const ChurnTrace trace = MakeTrace(engine.index().network(), 4, 80);
  std::vector<FlowTicket> active;
  ReplayRange(engine, trace, 0, trace.epochs.size(), active);
  const EngineCheckpoint checkpoint = engine.Checkpoint();

  // include_quality=false writes the pre-quality record byte stream.
  const std::string text = Serialize(checkpoint, true, false);
  EXPECT_EQ(text.find("quality"), std::string::npos);
  std::istringstream iss(text);
  const io::Parsed<EngineCheckpoint> parsed = io::ReadEngineCheckpoint(iss);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_FALSE(parsed.value->has_quality);
  EXPECT_TRUE(parsed.value->quality.samples.empty());

  // Restoring a quality-free record resets the timeline instead of
  // CHECK-failing.
  Engine restored(engine.index().network(), SyncOptions());
  restored.Restore(*parsed.value);
  EXPECT_EQ(restored.QualityTimeline().samples_total, 0u);

  // An engine with sampling disabled never writes the section either.
  EngineOptions no_quality = SyncOptions();
  no_quality.quality_sampling = false;
  Engine plain(engine.index().network(), no_quality);
  EXPECT_FALSE(plain.Checkpoint().has_quality);
  EXPECT_EQ(Serialize(plain.Checkpoint()).find("quality"),
            std::string::npos);
}

TEST(EngineCheckpointTest, CorruptQualitySectionsAreRejected) {
  Engine engine(TestNetwork(71), SyncOptions());
  const ChurnTrace trace = MakeTrace(engine.index().network(), 5, 81);
  std::vector<FlowTicket> active;
  ReplayRange(engine, trace, 0, trace.epochs.size(), active);
  const std::string good = Serialize(engine.Checkpoint());
  ASSERT_NE(good.find("quality v1"), std::string::npos);

  const auto reject = [](const std::string& text, const std::string& what) {
    std::istringstream iss(text);
    const io::Parsed<EngineCheckpoint> parsed =
        io::ReadEngineCheckpoint(iss);
    EXPECT_FALSE(parsed.ok()) << what;
    EXPECT_FALSE(parsed.error.empty()) << what;
    EXPECT_FALSE(parsed.value.has_value()) << what;
  };
  const auto mutate = [&good](const std::string& from,
                              const std::string& to) {
    std::string text = good;
    const std::size_t at = text.find(from);
    EXPECT_NE(at, std::string::npos) << from;
    text.replace(at, from.size(), to);
    return text;
  };

  // Each mutation prepends a corrupt line of the same record type, so the
  // strict reader trips on it regardless of the genuine line's values.
  reject(mutate("quality v1", "quality v2"), "unknown section version");
  reject(mutate("qbound ", "qbound 7 0x0p+0\nqbound "),
         "qbound flag out of range");
  reject(mutate("qbound ", "qbound 1 nan\nqbound "), "non-finite bound");
  reject(mutate("qdetector ", "qdetector nan 0 0x0p+0 0 0 0 0\nqdetector "),
         "non-finite detector accumulator");
  reject(mutate("qsamples ", "qsamples 99999\nqsamples "),
         "sample count beyond lifetime total");
  reject(mutate("qalerts ", "qalerts 1\nqalert 9 1 1 0x0p+0 0x0p+0\nqalerts "),
         "alert kind out of range");
  reject(good.substr(0, good.find("end quality")), "missing terminator");
  // The first qsample's mode field (token 3) forced out of range.
  const std::size_t sample_at = good.find("qsample ");
  ASSERT_NE(sample_at, std::string::npos);
  std::string bad_mode = good;
  // qsample <epoch> <version> <mode> ... — patch the third number to 9.
  std::size_t field = sample_at + std::string("qsample ").size();
  for (int skip = 0; skip < 2; ++skip) {
    field = bad_mode.find(' ', field) + 1;
  }
  const std::size_t field_end = bad_mode.find(' ', field);
  bad_mode.replace(field, field_end - field, "9");
  reject(bad_mode, "mode out of range");
}

TEST(EngineCheckpointTest, CorruptRecordsAreRejectedWithLineNumbers) {
  Engine engine(TestNetwork(64), SyncOptions());
  const ChurnTrace trace = MakeTrace(engine.index().network(), 4, 74);
  std::vector<FlowTicket> active;
  ReplayRange(engine, trace, 0, trace.epochs.size(), active);
  const std::string good = Serialize(engine.Checkpoint());

  const auto reject = [](const std::string& text) {
    std::istringstream iss(text);
    const io::Parsed<EngineCheckpoint> parsed =
        io::ReadEngineCheckpoint(iss);
    EXPECT_FALSE(parsed.ok()) << "accepted corrupt record:\n" << text;
    EXPECT_FALSE(parsed.error.empty());
    EXPECT_FALSE(parsed.value.has_value());  // never a partial object
  };

  // Truncation: drop the terminator (and anything after the flows line).
  reject(good.substr(0, good.find("end engine-checkpoint")));
  // Unknown mode.
  std::string bad_mode = good;
  bad_mode.replace(bad_mode.find("mode "), 11, "mode panicked");
  reject(bad_mode);
  // Counter renamed: order/name binding is strict.
  std::string bad_counter = good;
  bad_counter.replace(bad_counter.find("counter epochs"), 14,
                      "counter epoches");
  reject(bad_counter);
  // Trailing garbage after the terminator.
  reject(good + "counter epochs 1\n");
  // Header typo.
  reject("engine-checkpoint v2\n" +
         good.substr(good.find('\n') + 1));
}

TEST(EngineCheckpointTest, RejectsOutOfRangeValues) {
  const auto reject = [](const std::string& text,
                         const std::string& what) {
    std::istringstream iss(text);
    const io::Parsed<EngineCheckpoint> parsed =
        io::ReadEngineCheckpoint(iss);
    EXPECT_FALSE(parsed.ok()) << what;
    EXPECT_FALSE(parsed.value.has_value());
  };
  // A minimal well-formed prefix helper.
  const auto record = [](const std::string& lambda,
                         const std::string& tail) {
    std::string text = "engine-checkpoint v1\n"
                       "epoch 1\n"
                       "snapshot-version 2\n"
                       "mode normal\n"
                       "consecutive-failures 0\n"
                       "epochs-since-probe 0\n"
                       "pending-churn 0\n"
                       "k 3\n";
    text += "lambda " + lambda + "\n";
    text += tail;
    return text;
  };
  reject(record("nan", ""), "NaN lambda");
  reject(record("1.5", ""), "lambda above 1");
  reject(record("-0.25", ""), "negative lambda");
  reject(record("0.5", "num-vertices 99999999999\n"),
         "num-vertices overflowing VertexId");
  reject(record("0.5", "num-vertices -4\n"), "negative num-vertices");
}

}  // namespace
}  // namespace tdmd::engine
