#include "core/dp_tree.hpp"

#include <gtest/gtest.h>

#include "core/brute_force.hpp"
#include "core/objective.hpp"
#include "test_util.hpp"
#include "traffic/generator.hpp"

namespace tdmd::core {
namespace {

// ---------------------------------------------------------------------
// Golden tests against the paper's worked example (Figs. 5-7).  Entries
// marked inconsistent in the paper (see EXPERIMENTS.md) are not tested.
// ---------------------------------------------------------------------

TEST(TreeDpGolden, FullyServedAtRootMatchesFig6) {
  Instance instance = test::PaperInstance();
  const graph::Tree tree = test::PaperTree();
  TreeDpSolver solver(instance, tree, /*k=*/4);
  EXPECT_DOUBLE_EQ(solver.FullyServed(test::kV1, 1), 24.0);
  EXPECT_DOUBLE_EQ(solver.FullyServed(test::kV1, 2), 16.5);
  EXPECT_DOUBLE_EQ(solver.FullyServed(test::kV1, 3), 13.5);
  EXPECT_DOUBLE_EQ(solver.FullyServed(test::kV1, 4), 12.0);
}

TEST(TreeDpGolden, LeftSubtreeValuesMatchFig6) {
  Instance instance = test::PaperInstance();
  const graph::Tree tree = test::PaperTree();
  TreeDpSolver solver(instance, tree, 4);
  // F(v2, 1) = 3 (middlebox on v2), F(v2, k>=2) = 1.5 (both leaves).
  EXPECT_DOUBLE_EQ(solver.FullyServed(test::kV2, 1), 3.0);
  EXPECT_DOUBLE_EQ(solver.FullyServed(test::kV2, 2), 1.5);
  EXPECT_DOUBLE_EQ(solver.FullyServed(test::kV2, 3), 1.5);
  // F on leaves is 0 whenever k >= 1 (Eq. 9).
  for (VertexId leaf : {test::kV4, test::kV5, test::kV7, test::kV8}) {
    EXPECT_DOUBLE_EQ(solver.FullyServed(leaf, 1), 0.0);
  }
  // F(v6, 1) = 6 (box on v6), F(v6, 2) = 3 (boxes on v7 and v8).
  EXPECT_DOUBLE_EQ(solver.FullyServed(test::kV6, 1), 6.0);
  EXPECT_DOUBLE_EQ(solver.FullyServed(test::kV6, 2), 3.0);
}

TEST(TreeDpGolden, PartialTableAtRootMatchesFig7a) {
  Instance instance = test::PaperInstance();
  const graph::Tree tree = test::PaperTree();
  TreeDpSolver solver(instance, tree, 4);
  EXPECT_EQ(solver.SubtreeRate(test::kV1), 9);
  // Consistent entries from Fig. 7(a) (verified by hand; see
  // EXPERIMENTS.md):
  EXPECT_DOUBLE_EQ(solver.PartiallyServed(test::kV1, 0, 0), 24.0);
  EXPECT_DOUBLE_EQ(solver.PartiallyServed(test::kV1, 1, 5), 16.5);
  EXPECT_DOUBLE_EQ(solver.PartiallyServed(test::kV1, 1, 9), 24.0);
  EXPECT_DOUBLE_EQ(solver.PartiallyServed(test::kV1, 2, 2), 21.5);
  EXPECT_DOUBLE_EQ(solver.PartiallyServed(test::kV1, 2, 5), 16.5);
  EXPECT_DOUBLE_EQ(solver.PartiallyServed(test::kV1, 2, 6), 15.0);
  EXPECT_DOUBLE_EQ(solver.PartiallyServed(test::kV1, 2, 7), 14.5);
  EXPECT_DOUBLE_EQ(solver.PartiallyServed(test::kV1, 2, 8), 15.0);
  EXPECT_DOUBLE_EQ(solver.PartiallyServed(test::kV1, 2, 9), 16.5);
  // The paper's Section 5.1 text: P(v1, 3, 8) = 13 < P(v1, 3, 9) = 13.5.
  EXPECT_DOUBLE_EQ(solver.PartiallyServed(test::kV1, 3, 8), 13.0);
  EXPECT_DOUBLE_EQ(solver.PartiallyServed(test::kV1, 3, 9), 13.5);
  EXPECT_DOUBLE_EQ(solver.PartiallyServed(test::kV1, 4, 9), 12.0);
}

TEST(TreeDpGolden, PartialTableAtV3MatchesFig7c) {
  Instance instance = test::PaperInstance();
  const graph::Tree tree = test::PaperTree();
  TreeDpSolver solver(instance, tree, 4);
  EXPECT_EQ(solver.SubtreeRate(test::kV3), 6);
  EXPECT_DOUBLE_EQ(solver.PartiallyServed(test::kV3, 0, 0), 12.0);
  EXPECT_DOUBLE_EQ(solver.PartiallyServed(test::kV3, 1, 1), 11.0);
  EXPECT_DOUBLE_EQ(solver.PartiallyServed(test::kV3, 1, 5), 7.0);
  EXPECT_DOUBLE_EQ(solver.PartiallyServed(test::kV3, 2, 6), 6.0);
}

TEST(TreeDpGolden, LeafTablesMatchFig7d) {
  Instance instance = test::PaperInstance();
  const graph::Tree tree = test::PaperTree();
  TreeDpSolver solver(instance, tree, 4);
  EXPECT_EQ(solver.SubtreeRate(test::kV4), 2);
  EXPECT_DOUBLE_EQ(solver.PartiallyServed(test::kV4, 0, 0), 0.0);
  EXPECT_DOUBLE_EQ(solver.PartiallyServed(test::kV4, 1, 2), 0.0);
  // b = 2 with no middlebox is unreachable.
  EXPECT_EQ(solver.PartiallyServed(test::kV4, 0, 2), kInfiniteBandwidth);
}

TEST(TreeDpGolden, OptimalDeploymentsFromSection51) {
  Instance instance = test::PaperInstance();
  const graph::Tree tree = test::PaperTree();
  // k = 3: "the optimal deployment for k = 3 is {v2, v7, v8}".
  PlacementResult k3 = DpTree(instance, tree, 3);
  EXPECT_TRUE(k3.feasible);
  EXPECT_DOUBLE_EQ(k3.bandwidth, 13.5);
  EXPECT_EQ(k3.deployment.SortedVertices(),
            (std::vector<VertexId>{test::kV2, test::kV7, test::kV8}));
  // k = 2: "{v1, v7} or {v2, v6}".
  PlacementResult k2 = DpTree(instance, tree, 2);
  EXPECT_DOUBLE_EQ(k2.bandwidth, 16.5);
  const auto plan = k2.deployment.SortedVertices();
  EXPECT_TRUE(plan == (std::vector<VertexId>{test::kV1, test::kV7}) ||
              plan == (std::vector<VertexId>{test::kV2, test::kV6}))
      << "got " << k2.deployment.ToString();
  // k = 1: only the root serves everything.
  PlacementResult k1 = DpTree(instance, tree, 1);
  EXPECT_DOUBLE_EQ(k1.bandwidth, 24.0);
  EXPECT_EQ(k1.deployment.SortedVertices(),
            (std::vector<VertexId>{test::kV1}));
  // k = 4: every source leaf.
  PlacementResult k4 = DpTree(instance, tree, 4);
  EXPECT_DOUBLE_EQ(k4.bandwidth, 12.0);
  EXPECT_EQ(k4.deployment.SortedVertices(),
            (std::vector<VertexId>{test::kV4, test::kV5, test::kV7,
                                   test::kV8}));
}

TEST(TreeDpTest, KZeroInfeasibleWithFlows) {
  Instance instance = test::PaperInstance();
  const graph::Tree tree = test::PaperTree();
  PlacementResult result = DpTree(instance, tree, 0);
  EXPECT_FALSE(result.feasible);
}

TEST(TreeDpTest, EmptyFlowSetCostsNothing) {
  const graph::Tree tree = test::PaperTree();
  Instance instance = MakeTreeInstance(tree, {}, 0.5);
  PlacementResult result = DpTree(instance, tree, 2);
  EXPECT_TRUE(result.feasible);
  EXPECT_DOUBLE_EQ(result.bandwidth, 0.0);
  EXPECT_TRUE(result.deployment.empty());
}

TEST(TreeDpTest, BudgetBeyondLeavesSaturates) {
  Instance instance = test::PaperInstance();
  const graph::Tree tree = test::PaperTree();
  PlacementResult result = DpTree(instance, tree, 8);
  EXPECT_DOUBLE_EQ(result.bandwidth, 12.0);  // lambda * 24, the floor
  EXPECT_LE(result.deployment.size(), 8u);
}

TEST(TreeDpTest, SpamFilterLambdaZero) {
  const graph::Tree tree = test::PaperTree();
  Instance instance = MakeTreeInstance(tree, test::PaperFlows(tree), 0.0);
  // k = 4: all flows cut at their sources; zero bandwidth.
  PlacementResult result = DpTree(instance, tree, 4);
  EXPECT_DOUBLE_EQ(result.bandwidth, 0.0);
  // k = 1: everything rides to the root at full rate.
  PlacementResult root_only = DpTree(instance, tree, 1);
  EXPECT_DOUBLE_EQ(root_only.bandwidth, 24.0);
}

TEST(TreeDpTest, LambdaOneBandwidthIndependentOfK) {
  const graph::Tree tree = test::PaperTree();
  Instance instance = MakeTreeInstance(tree, test::PaperFlows(tree), 1.0);
  for (std::size_t k = 1; k <= 4; ++k) {
    EXPECT_DOUBLE_EQ(DpTree(instance, tree, k).bandwidth, 24.0);
  }
}

TEST(TreeDpTest, MonotoneInK) {
  Rng rng(5);
  const test::RandomTreeCase c = test::MakeRandomTreeCase(18, 0.5, rng);
  double previous = kInfiniteBandwidth;
  for (std::size_t k = 1; k <= 6; ++k) {
    const PlacementResult r = DpTree(c.instance, c.tree, k);
    EXPECT_LE(r.bandwidth, previous + 1e-9);
    previous = r.bandwidth;
  }
}

TEST(TreeDpTest, MultipleFlowsPerLeafHandled) {
  // The DP merges same-leaf flows internally; the result must match an
  // instance with pre-merged flows.
  const graph::Tree tree = test::PaperTree();
  traffic::FlowSet flows = test::PaperFlows(tree);
  flows.push_back(flows[2]);  // second flow from v7 (rate 5 -> total 10)
  Instance duplicated = MakeTreeInstance(tree, flows, 0.5);
  Instance merged = MakeTreeInstance(
      tree, traffic::MergeSameSourceFlows(flows), 0.5);
  for (std::size_t k = 1; k <= 4; ++k) {
    EXPECT_NEAR(DpTree(duplicated, tree, k).bandwidth,
                DpTree(merged, tree, k).bandwidth, 1e-9);
  }
}

class DpOptimality : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DpOptimality, MatchesBruteForceOnRandomTrees) {
  // Theorem 4: the DP is optimal.  Verify against exhaustive search.
  Rng rng(GetParam());
  const auto size = static_cast<VertexId>(rng.NextInt(4, 14));
  const double lambda = rng.NextDouble(0.0, 1.0);
  const test::RandomTreeCase c =
      test::MakeRandomTreeCase(size, lambda, rng);
  for (std::size_t k : {1u, 2u, 3u}) {
    const PlacementResult dp = DpTree(c.instance, c.tree, k);
    const auto brute = BruteForceOptimal(c.instance, k);
    ASSERT_TRUE(brute.has_value());
    ASSERT_TRUE(dp.feasible);
    EXPECT_NEAR(dp.bandwidth, brute->best.bandwidth, 1e-9)
        << "size=" << size << " lambda=" << lambda << " k=" << k
        << " dp=" << dp.deployment.ToString()
        << " brute=" << brute->best.deployment.ToString();
    EXPECT_LE(dp.deployment.size(), k);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DpOptimality,
                         ::testing::Range<std::uint64_t>(1, 41));

class DpTracebackConsistency
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DpTracebackConsistency, DeploymentReproducesTableValue) {
  Rng rng(GetParam() * 7919);
  const auto size = static_cast<VertexId>(rng.NextInt(5, 40));
  const double lambda = rng.NextDouble(0.0, 1.0);
  const test::RandomTreeCase c =
      test::MakeRandomTreeCase(size, lambda, rng);
  for (std::size_t k : {1u, 2u, 4u, 8u}) {
    TreeDpSolver solver(c.instance, c.tree, k);
    const PlacementResult result = solver.Solve();
    ASSERT_TRUE(result.feasible);
    // Solve() internally CHECKs table-vs-traceback agreement; here we
    // assert the public invariants.
    EXPECT_LE(result.deployment.size(), k);
    EXPECT_NEAR(result.bandwidth,
                EvaluateBandwidth(c.instance, result.deployment), 1e-9);
    EXPECT_NEAR(result.bandwidth,
                solver.FullyServed(c.tree.root(), k), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DpTracebackConsistency,
                         ::testing::Range<std::uint64_t>(1, 21));

TEST(TreeDpTest, GeneratedWorkloadEndToEnd) {
  Rng rng(77);
  const graph::Tree tree = topology::RandomBoundedTree(22, 3, rng);
  traffic::WorkloadParams params;
  params.flow_density = 0.5;
  params.link_capacity = 50.0;
  params.rates.max_rate = 10;
  const traffic::FlowSet flows =
      traffic::GenerateTreeWorkload(tree, params, rng);
  Instance instance = MakeTreeInstance(
      tree, traffic::MergeSameSourceFlows(flows), 0.5);
  const PlacementResult result = DpTree(instance, tree, 8);
  EXPECT_TRUE(result.feasible);
  EXPECT_GE(result.bandwidth, instance.MinimumPossibleBandwidth() - 1e-9);
  EXPECT_LE(result.bandwidth, instance.UnprocessedBandwidth() + 1e-9);
}

}  // namespace
}  // namespace tdmd::core
