#include "graph/tree.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "graph/traversal.hpp"
#include "test_util.hpp"
#include "topology/generators.hpp"

namespace tdmd::graph {
namespace {

TEST(TreeTest, PaperTreeStructure) {
  Tree tree = test::PaperTree();
  EXPECT_EQ(tree.num_vertices(), 8);
  EXPECT_EQ(tree.root(), test::kV1);
  EXPECT_EQ(tree.Parent(test::kV4), test::kV2);
  EXPECT_EQ(tree.Parent(test::kV7), test::kV6);
  EXPECT_EQ(tree.Depth(test::kV1), 0);
  EXPECT_EQ(tree.Depth(test::kV4), 2);
  EXPECT_EQ(tree.Depth(test::kV7), 3);
  EXPECT_TRUE(tree.IsLeaf(test::kV4));
  EXPECT_FALSE(tree.IsLeaf(test::kV6));
  EXPECT_EQ(tree.Leaves(),
            (std::vector<VertexId>{test::kV4, test::kV5, test::kV7,
                                   test::kV8}));
}

TEST(TreeTest, ChildrenAreSortedAndComplete) {
  Tree tree = test::PaperTree();
  const auto kids = tree.Children(test::kV1);
  EXPECT_EQ(std::vector<VertexId>(kids.begin(), kids.end()),
            (std::vector<VertexId>{test::kV2, test::kV3}));
  EXPECT_TRUE(tree.Children(test::kV8).empty());
}

TEST(TreeTest, PostOrderPutsChildrenBeforeParents) {
  Rng rng(3);
  Tree tree = topology::RandomTree(60, rng);
  std::vector<int> position(60, -1);
  const auto& order = tree.PostOrder();
  ASSERT_EQ(order.size(), 60u);
  for (std::size_t i = 0; i < order.size(); ++i) {
    position[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
  }
  for (VertexId v = 0; v < 60; ++v) {
    if (v == tree.root()) continue;
    EXPECT_LT(position[static_cast<std::size_t>(v)],
              position[static_cast<std::size_t>(tree.Parent(v))]);
  }
  EXPECT_EQ(order.back(), tree.root());
}

TEST(TreeTest, SubtreeSizesSumCorrectly) {
  Tree tree = test::PaperTree();
  EXPECT_EQ(tree.SubtreeSize(test::kV1), 8);
  EXPECT_EQ(tree.SubtreeSize(test::kV2), 3);
  EXPECT_EQ(tree.SubtreeSize(test::kV3), 4);
  EXPECT_EQ(tree.SubtreeSize(test::kV6), 3);
  EXPECT_EQ(tree.SubtreeSize(test::kV7), 1);
}

TEST(TreeTest, AncestorRelation) {
  Tree tree = test::PaperTree();
  EXPECT_TRUE(tree.IsAncestorOf(test::kV1, test::kV8));
  EXPECT_TRUE(tree.IsAncestorOf(test::kV6, test::kV7));
  EXPECT_TRUE(tree.IsAncestorOf(test::kV4, test::kV4));  // self
  EXPECT_FALSE(tree.IsAncestorOf(test::kV7, test::kV6));
  EXPECT_FALSE(tree.IsAncestorOf(test::kV2, test::kV8));
}

TEST(TreeTest, PathToRootWalksParents) {
  Tree tree = test::PaperTree();
  EXPECT_EQ(tree.PathToRoot(test::kV7),
            (std::vector<VertexId>{test::kV7, test::kV6, test::kV3,
                                   test::kV1}));
  EXPECT_EQ(tree.PathToRoot(test::kV1),
            (std::vector<VertexId>{test::kV1}));
}

TEST(TreeTest, ToDigraphPointsTowardRoot) {
  Tree tree = test::PaperTree();
  Digraph g = tree.ToDigraph();
  EXPECT_EQ(g.num_arcs(), 7);
  EXPECT_NE(g.FindArc(test::kV4, test::kV2), kInvalidEdge);
  EXPECT_EQ(g.FindArc(test::kV2, test::kV4), kInvalidEdge);
  EXPECT_EQ(g.OutDegree(test::kV1), 0);  // root emits nothing
}

TEST(TreeTest, BfsTreeOfPreservesIdsAndRoot) {
  Rng rng(11);
  Digraph g = topology::Waxman(25, 0.5, 0.4, rng);
  Tree tree = Tree::BfsTreeOf(g, 4);
  EXPECT_EQ(tree.root(), 4);
  EXPECT_EQ(tree.num_vertices(), 25);
  // Each tree edge must exist (in either direction) in the base graph.
  for (VertexId v = 0; v < 25; ++v) {
    if (v == tree.root()) continue;
    const VertexId p = tree.Parent(v);
    EXPECT_TRUE(g.FindArc(v, p) != kInvalidEdge ||
                g.FindArc(p, v) != kInvalidEdge);
  }
}

TEST(TreeTest, BfsTreeDepthsAreShortest) {
  Rng rng(23);
  Digraph g = topology::ErdosRenyi(30, 0.15, rng);
  Tree tree = Tree::BfsTreeOf(g, 0);
  BfsResult bfs = BreadthFirst(g, 0);
  for (VertexId v = 0; v < 30; ++v) {
    // g is symmetric (bidirectional links), so undirected BFS == BFS.
    EXPECT_EQ(tree.Depth(v), bfs.dist[static_cast<std::size_t>(v)]);
  }
}

TEST(TreeTest, SingleVertexTree) {
  Tree tree(std::vector<VertexId>{kInvalidVertex});
  EXPECT_EQ(tree.num_vertices(), 1);
  EXPECT_EQ(tree.root(), 0);
  EXPECT_TRUE(tree.IsLeaf(0));
  EXPECT_EQ(tree.Leaves(), std::vector<VertexId>{0});
}

TEST(TreeDeathTest, RejectsMalformedParentArrays) {
  EXPECT_DEATH(Tree(std::vector<VertexId>{}), "at least one vertex");
  EXPECT_DEATH(Tree(std::vector<VertexId>{kInvalidVertex, kInvalidVertex}),
               "multiple roots");
  EXPECT_DEATH(Tree(std::vector<VertexId>{0, kInvalidVertex}), "self-loop");
  EXPECT_DEATH(Tree(std::vector<VertexId>{1, 0}), "root");
  EXPECT_DEATH(Tree(std::vector<VertexId>{kInvalidVertex, 9}),
               "out of range");
}

TEST(TreeDeathTest, CycleDetected) {
  // 0 is root; 1 -> 2 -> 1 cycle unreachable from root.
  EXPECT_DEATH(Tree(std::vector<VertexId>{kInvalidVertex, 2, 1}), "cycle");
}

class RandomTreeInvariants : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(RandomTreeInvariants, DepthLeavesAndSizesConsistent) {
  Rng rng(GetParam());
  const auto n = static_cast<VertexId>(rng.NextInt(1, 80));
  Tree tree = topology::RandomTree(n, rng);

  // Depth of child = depth of parent + 1.
  for (VertexId v = 0; v < n; ++v) {
    if (v == tree.root()) continue;
    EXPECT_EQ(tree.Depth(v), tree.Depth(tree.Parent(v)) + 1);
  }
  // Leaves are exactly the childless vertices.
  std::set<VertexId> leaves(tree.Leaves().begin(), tree.Leaves().end());
  for (VertexId v = 0; v < n; ++v) {
    EXPECT_EQ(leaves.count(v) == 1, tree.Children(v).empty());
  }
  // Subtree sizes: root covers everything; leaves are 1.
  EXPECT_EQ(tree.SubtreeSize(tree.root()), n);
  for (VertexId leaf : tree.Leaves()) {
    EXPECT_EQ(tree.SubtreeSize(leaf), 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTreeInvariants,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

}  // namespace
}  // namespace tdmd::graph
