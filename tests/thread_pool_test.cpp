#include "parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace tdmd::parallel {
namespace {

TEST(ThreadPoolTest, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto future = pool.Submit([]() { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPoolTest, SubmitVoidTask) {
  ThreadPool pool(2);
  std::atomic<int> flag{0};
  pool.Submit([&]() { flag = 1; }).get();
  EXPECT_EQ(flag.load(), 1);
}

TEST(ThreadPoolTest, ExceptionsPropagateThroughFuture) {
  ThreadPool pool(1);
  auto future =
      pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ManyTasksAllExecute) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 500; ++i) {
    futures.push_back(pool.Submit([&]() { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 500);
}

TEST(ThreadPoolTest, WaitBlocksUntilIdle) {
  ThreadPool pool(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 20; ++i) {
    pool.Submit([&]() {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      ++done;
    });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 20);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&]() { ++done; });
    }
  }  // destructor joins after draining
  EXPECT_EQ(done.load(), 50);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(pool, 0, 1000, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  ParallelFor(pool, 5, 5, [&](std::size_t) { ++calls; });
  ParallelFor(pool, 7, 3, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelForTest, NonZeroBegin) {
  ThreadPool pool(3);
  std::atomic<std::size_t> sum{0};
  ParallelFor(pool, 10, 20, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), std::size_t{145});  // 10 + ... + 19
}

TEST(ParallelForTest, ExceptionPropagates) {
  ThreadPool pool(2);
  EXPECT_THROW(ParallelFor(pool, 0, 100,
                           [](std::size_t i) {
                             if (i == 57) throw std::logic_error("bad");
                           }),
               std::logic_error);
}

TEST(ParallelMapTest, ResultsInIndexOrder) {
  ThreadPool pool(4);
  auto results =
      ParallelMap(pool, 64, [](std::size_t i) { return i * i; });
  ASSERT_EQ(results.size(), 64u);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(results[i], i * i);
  }
}

TEST(ThreadPoolTest, TaskHookRunsBeforeEveryTask) {
  ThreadPool pool(2);
  std::atomic<int> hook_calls{0};
  pool.SetTaskHook([&hook_calls]() { ++hook_calls; });
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(pool.Submit([i]() { return i; }));
  }
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i);
  }
  EXPECT_EQ(hook_calls.load(), 16);
  pool.Wait();  // counters are bumped after the future resolves
  const ThreadPool::PoolStats stats = pool.stats();
  EXPECT_EQ(stats.tasks_executed, 16u);
  EXPECT_EQ(stats.tasks_dropped, 0u);
  // Uninstalling stops the calls.
  pool.SetTaskHook(nullptr);
  pool.Submit([]() {}).get();
  EXPECT_EQ(hook_calls.load(), 16);
}

TEST(ThreadPoolTest, ThrowingHookDropsTheTask) {
  ThreadPool pool(1);
  std::atomic<bool> ran{false};
  pool.SetTaskHook([]() { throw std::runtime_error("injected"); });
  std::future<void> dropped =
      pool.Submit([&ran]() { ran.store(true); });
  EXPECT_THROW(dropped.get(), std::future_error);
  EXPECT_FALSE(ran.load());

  pool.SetTaskHook(nullptr);
  std::future<void> healthy = pool.Submit([&ran]() { ran.store(true); });
  healthy.get();
  EXPECT_TRUE(ran.load());
  pool.Wait();  // counters are bumped after the future resolves
  const ThreadPool::PoolStats stats = pool.stats();
  EXPECT_EQ(stats.tasks_dropped, 1u);
  EXPECT_EQ(stats.tasks_executed, 1u);
}

TEST(ParallelMapTest, MatchesSerialComputation) {
  ThreadPool pool(8);
  auto heavy = [](std::size_t i) {
    double acc = 0.0;
    for (std::size_t j = 1; j <= 1000; ++j) {
      acc += static_cast<double>((i + j) % 97);
    }
    return acc;
  };
  auto par = ParallelMap(pool, 200, heavy);
  for (std::size_t i = 0; i < 200; ++i) {
    EXPECT_DOUBLE_EQ(par[i], heavy(i));
  }
}

}  // namespace
}  // namespace tdmd::parallel
