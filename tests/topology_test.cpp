#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "graph/traversal.hpp"
#include "topology/ark.hpp"
#include "topology/generators.hpp"
#include "topology/mutate.hpp"

namespace tdmd::topology {
namespace {

TEST(ArkTest, FullGraphIsConnectedAndSized) {
  Rng rng(1);
  ArkParams params;
  params.num_monitors = 80;
  ArkTopology ark = GenerateArk(params, rng);
  EXPECT_EQ(ark.graph.num_vertices(), 80);
  EXPECT_TRUE(graph::IsWeaklyConnected(ark.graph));
  EXPECT_TRUE(ark.graph.IsSymmetric());
  EXPECT_EQ(ark.x.size(), 80u);
  for (double coord : ark.x) {
    EXPECT_GE(coord, 0.0);
    EXPECT_LE(coord, 1.0);
  }
}

TEST(ArkTest, DeterministicGivenSeed) {
  ArkParams params;
  params.num_monitors = 50;
  Rng rng_a(77), rng_b(77);
  ArkTopology a = GenerateArk(params, rng_a);
  ArkTopology b = GenerateArk(params, rng_b);
  EXPECT_EQ(a.graph.num_arcs(), b.graph.num_arcs());
  EXPECT_EQ(a.x, b.x);
  EXPECT_EQ(a.y, b.y);
}

TEST(ArkTest, GeneralSubgraphExactSizeConnected) {
  Rng rng(5);
  ArkTopology ark = GenerateArk(ArkParams{}, rng);
  for (VertexId size : {10, 22, 30, 52}) {
    graph::Digraph sub = ExtractGeneralSubgraph(ark, size, rng);
    EXPECT_EQ(sub.num_vertices(), size);
    EXPECT_TRUE(graph::IsWeaklyConnected(sub));
    EXPECT_TRUE(sub.IsSymmetric());
  }
}

TEST(ArkTest, TreeSubgraphRootedAtZero) {
  Rng rng(9);
  ArkTopology ark = GenerateArk(ArkParams{}, rng);
  graph::Tree tree = ExtractTreeSubgraph(ark, 22, rng);
  EXPECT_EQ(tree.num_vertices(), 22);
  EXPECT_EQ(tree.root(), 0);
  EXPECT_FALSE(tree.Leaves().empty());
}

TEST(ErdosRenyiTest, ConnectedAtAnyDensity) {
  Rng rng(13);
  for (double p : {0.0, 0.05, 0.3, 1.0}) {
    graph::Digraph g = ErdosRenyi(25, p, rng);
    EXPECT_EQ(g.num_vertices(), 25);
    EXPECT_TRUE(graph::IsWeaklyConnected(g)) << "p=" << p;
    EXPECT_TRUE(g.IsSymmetric());
  }
}

TEST(ErdosRenyiTest, FullDensityIsComplete) {
  Rng rng(15);
  graph::Digraph g = ErdosRenyi(10, 1.0, rng);
  EXPECT_EQ(g.num_arcs(), 10 * 9);  // both directions of all pairs
}

TEST(WaxmanTest, ConnectedAndSymmetric) {
  Rng rng(17);
  graph::Digraph g = Waxman(40, 0.4, 0.3, rng);
  EXPECT_TRUE(graph::IsWeaklyConnected(g));
  EXPECT_TRUE(g.IsSymmetric());
}

TEST(RandomTreeTest, SizesFromOne) {
  Rng rng(19);
  for (VertexId n : {1, 2, 3, 10, 100}) {
    graph::Tree tree = RandomTree(n, rng);
    EXPECT_EQ(tree.num_vertices(), n);
    EXPECT_EQ(tree.root(), 0);
  }
}

TEST(RandomBoundedTreeTest, RespectsBranchingBound) {
  Rng rng(21);
  for (VertexId max_children : {1, 2, 4}) {
    graph::Tree tree = RandomBoundedTree(64, max_children, rng);
    for (VertexId v = 0; v < 64; ++v) {
      EXPECT_LE(static_cast<VertexId>(tree.Children(v).size()),
                max_children);
    }
  }
}

TEST(RandomBoundedTreeTest, UnaryBoundGivesAPath) {
  Rng rng(23);
  graph::Tree tree = RandomBoundedTree(20, 1, rng);
  EXPECT_EQ(tree.Leaves().size(), 1u);
}

TEST(CompleteBinaryTreeTest, HeapShape) {
  graph::Tree tree = CompleteBinaryTree(4);
  EXPECT_EQ(tree.num_vertices(), 15);
  EXPECT_EQ(tree.Leaves().size(), 8u);
  for (VertexId v = 1; v < 15; ++v) {
    EXPECT_EQ(tree.Parent(v), (v - 1) / 2);
  }
}

TEST(FatTreeTest, LayerCountsAndDepth) {
  graph::Tree tree = FatTreeAggregation(4, 2, 3);
  // 1 core + 4 pods + 8 ToRs + 24 hosts.
  EXPECT_EQ(tree.num_vertices(), 37);
  EXPECT_EQ(tree.Leaves().size(), 24u);
  for (VertexId leaf : tree.Leaves()) {
    EXPECT_EQ(tree.Depth(leaf), 3);
  }
}

TEST(BCubeTest, StructureOfBCube41) {
  graph::Digraph g = BCube(4, 1);
  // 16 servers + 2 levels * 4 switches.
  EXPECT_EQ(g.num_vertices(), 24);
  EXPECT_TRUE(graph::IsWeaklyConnected(g));
  EXPECT_TRUE(g.IsSymmetric());
  // Every server has exactly level+1 = 2 switch links (4 arcs).
  for (VertexId s = 0; s < 16; ++s) {
    EXPECT_EQ(g.OutDegree(s), 2);
  }
  // Every switch hosts n = 4 servers.
  for (VertexId sw = 16; sw < 24; ++sw) {
    EXPECT_EQ(g.OutDegree(sw), 4);
  }
}

TEST(ResizeGeneralTest, GrowAndShrinkKeepConnectivity) {
  Rng rng(29);
  graph::Digraph g = ErdosRenyi(20, 0.15, rng);
  graph::Digraph grown = ResizeGeneral(g, 35, rng);
  EXPECT_EQ(grown.num_vertices(), 35);
  EXPECT_TRUE(graph::IsWeaklyConnected(grown));
  graph::Digraph shrunk = ResizeGeneral(g, 8, rng);
  EXPECT_EQ(shrunk.num_vertices(), 8);
  EXPECT_TRUE(graph::IsWeaklyConnected(shrunk));
}

TEST(ResizeGeneralTest, NoopWhenAlreadyTargetSize) {
  Rng rng(31);
  graph::Digraph g = ErdosRenyi(15, 0.2, rng);
  graph::Digraph same = ResizeGeneral(g, 15, rng);
  EXPECT_EQ(same.num_vertices(), 15);
  EXPECT_EQ(same.num_arcs(), g.num_arcs());
}

TEST(ResizeTreeTest, GrowAndShrinkStayTrees) {
  Rng rng(37);
  graph::Tree tree = RandomTree(12, rng);
  graph::Tree grown = ResizeTree(tree, 30, rng);
  EXPECT_EQ(grown.num_vertices(), 30);
  EXPECT_EQ(grown.root(), 0);
  graph::Tree shrunk = ResizeTree(tree, 5, rng);
  EXPECT_EQ(shrunk.num_vertices(), 5);
  EXPECT_EQ(shrunk.root(), 0);
}

TEST(ResizeTreeTest, ShrinkToSingleVertex) {
  Rng rng(41);
  graph::Tree tree = RandomTree(10, rng);
  graph::Tree tiny = ResizeTree(tree, 1, rng);
  EXPECT_EQ(tiny.num_vertices(), 1);
  EXPECT_EQ(tiny.root(), 0);
}

class SizeSweepInvariant : public ::testing::TestWithParam<VertexId> {};

TEST_P(SizeSweepInvariant, PaperSizeRangeStaysValid) {
  // The paper sweeps 12..32 (tree) and 12..52 (general).
  Rng rng(1000 + static_cast<std::uint64_t>(GetParam()));
  ArkTopology ark = GenerateArk(ArkParams{}, rng);
  graph::Digraph g = ExtractGeneralSubgraph(ark, GetParam(), rng);
  EXPECT_EQ(g.num_vertices(), GetParam());
  EXPECT_TRUE(graph::IsWeaklyConnected(g));
  graph::Tree tree = ExtractTreeSubgraph(ark, GetParam(), rng);
  EXPECT_EQ(tree.num_vertices(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(PaperSizes, SizeSweepInvariant,
                         ::testing::Values(12, 16, 20, 24, 28, 32, 40, 52));

}  // namespace
}  // namespace tdmd::topology
