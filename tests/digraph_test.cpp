#include "graph/digraph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace tdmd::graph {
namespace {

TEST(DigraphBuilderTest, EmptyGraph) {
  DigraphBuilder builder(0);
  Digraph g = builder.Build();
  EXPECT_EQ(g.num_vertices(), 0);
  EXPECT_EQ(g.num_arcs(), 0);
}

TEST(DigraphBuilderTest, AddVerticesReturnsFirstNewId) {
  DigraphBuilder builder(2);
  EXPECT_EQ(builder.AddVertices(3), 2);
  EXPECT_EQ(builder.num_vertices(), 5);
  EXPECT_EQ(builder.AddVertices(0), 5);
}

TEST(DigraphTest, OutAndInAdjacency) {
  DigraphBuilder builder(4);
  builder.AddArc(0, 1);
  builder.AddArc(0, 2);
  builder.AddArc(1, 2);
  builder.AddArc(3, 0);
  Digraph g = builder.Build();

  EXPECT_EQ(g.num_vertices(), 4);
  EXPECT_EQ(g.num_arcs(), 4);
  EXPECT_EQ(g.OutDegree(0), 2);
  EXPECT_EQ(g.InDegree(0), 1);
  EXPECT_EQ(g.OutDegree(2), 0);
  EXPECT_EQ(g.InDegree(2), 2);

  std::vector<VertexId> heads;
  for (EdgeId e : g.OutArcs(0)) heads.push_back(g.arc(e).head);
  std::sort(heads.begin(), heads.end());
  EXPECT_EQ(heads, (std::vector<VertexId>{1, 2}));

  std::vector<VertexId> tails;
  for (EdgeId e : g.InArcs(2)) tails.push_back(g.arc(e).tail);
  std::sort(tails.begin(), tails.end());
  EXPECT_EQ(tails, (std::vector<VertexId>{0, 1}));
}

TEST(DigraphTest, ArcEndpointsPreserved) {
  DigraphBuilder builder(3);
  const EdgeId e = builder.AddArc(2, 1);
  Digraph g = builder.Build();
  EXPECT_EQ(g.arc(e).tail, 2);
  EXPECT_EQ(g.arc(e).head, 1);
}

TEST(DigraphTest, FindArcPresentAndAbsent) {
  DigraphBuilder builder(3);
  builder.AddArc(0, 1);
  builder.AddArc(1, 2);
  Digraph g = builder.Build();
  EXPECT_NE(g.FindArc(0, 1), kInvalidEdge);
  EXPECT_EQ(g.FindArc(1, 0), kInvalidEdge);
  EXPECT_EQ(g.FindArc(0, 2), kInvalidEdge);
}

TEST(DigraphTest, BidirectionalMakesSymmetric) {
  DigraphBuilder builder(4);
  builder.AddBidirectional(0, 1);
  builder.AddBidirectional(1, 2);
  builder.AddBidirectional(2, 3);
  Digraph g = builder.Build();
  EXPECT_TRUE(g.IsSymmetric());
  EXPECT_EQ(g.num_arcs(), 6);
}

TEST(DigraphTest, AsymmetricDetected) {
  DigraphBuilder builder(2);
  builder.AddArc(0, 1);
  Digraph g = builder.Build();
  EXPECT_FALSE(g.IsSymmetric());
}

TEST(DigraphTest, ParallelArcsAllowedAndCounted) {
  DigraphBuilder builder(2);
  builder.AddArc(0, 1);
  builder.AddArc(0, 1);
  Digraph g = builder.Build();
  EXPECT_EQ(g.num_arcs(), 2);
  EXPECT_EQ(g.OutDegree(0), 2);
}

TEST(DigraphTest, IsValidVertexBounds) {
  DigraphBuilder builder(3);
  Digraph g = builder.Build();
  EXPECT_TRUE(g.IsValidVertex(0));
  EXPECT_TRUE(g.IsValidVertex(2));
  EXPECT_FALSE(g.IsValidVertex(3));
  EXPECT_FALSE(g.IsValidVertex(-1));
}

TEST(DigraphTest, ToStringMentionsCounts) {
  DigraphBuilder builder(2);
  builder.AddArc(0, 1);
  const std::string s = builder.Build().ToString();
  EXPECT_NE(s.find("|V|=2"), std::string::npos);
  EXPECT_NE(s.find("|E|=1"), std::string::npos);
}

TEST(DigraphBuilderDeathTest, OutOfRangeArcAborts) {
  DigraphBuilder builder(2);
  EXPECT_DEATH(builder.AddArc(0, 5), "out of range");
  EXPECT_DEATH(builder.AddArc(-1, 0), "out of range");
}

TEST(DigraphTest, BuilderReusableAfterBuild) {
  DigraphBuilder builder(2);
  builder.AddArc(0, 1);
  Digraph g1 = builder.Build();
  builder.AddArc(1, 0);
  Digraph g2 = builder.Build();
  EXPECT_EQ(g1.num_arcs(), 1);
  EXPECT_EQ(g2.num_arcs(), 2);
}

}  // namespace
}  // namespace tdmd::graph
