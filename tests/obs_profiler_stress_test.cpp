// TSan-targeted stress: worker threads spin nested spans (maintaining
// the signal-visible phase stacks and registering sample rings) while
// the main thread repeatedly installs and uninstalls profilers, and a
// scraper thread polls the metrics-facing totals the whole time.  This
// certifies the uninstall-while-sampling contract: InstallProfiler(
// nullptr) disarms the timer and spins until in-flight handlers retire,
// so drains and destruction after uninstall never race a handler.  The
// CI tsan job runs this suite; profilers are destroyed only after every
// instrumented thread has joined, per the lifecycle contract.
#include "obs/profiler.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "obs/trace.hpp"

namespace tdmd::obs {
namespace {

/// Counts malformed stacks in one drain (depth over the cap or a phase
/// byte outside the enum range), so threads can report without ASSERTs.
std::uint64_t CountViolations(const ProfDrainResult& drained) {
  std::uint64_t violations = 0;
  for (const ProfStack& stack : drained.stacks) {
    if (stack.phases.size() > kMaxProfiledDepth) ++violations;
    for (TracePhase phase : stack.phases) {
      if (static_cast<std::size_t>(phase) >= kNumTracePhases) {
        ++violations;
      }
    }
  }
  return violations;
}

TEST(ObsProfilerStress, UninstallWhileSamplingAndScraping) {
  constexpr int kWorkers = 3;
  constexpr int kIterations = 8;

  // All profilers outlive all instrumented threads: constructed before
  // the workers start, destroyed after they join.
  std::vector<std::unique_ptr<Profiler>> profilers;
  for (int i = 0; i < kIterations; ++i) {
    Profiler::Options options;
    options.ring_capacity = 64;  // small: exercise overwrite under load
    profilers.push_back(std::make_unique<Profiler>(options));
  }

  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  workers.reserve(kWorkers);
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&stop] {
      volatile std::uint64_t sink = 0;
      while (!stop.load(std::memory_order_acquire)) {
        ScopedSpan epoch(TracePhase::kEpoch);
        for (int i = 0; i < 50; ++i) {
          ScopedSpan round(TracePhase::kGtpRound);
          for (int j = 0; j < 2000; ++j) {
            sink = sink + static_cast<unsigned>(j);
          }
        }
      }
    });
  }

  // Metrics-scrape path concurrent with install/uninstall flips: the
  // totals must always be readable (live or latched), never torn.
  std::thread scraper([&stop] {
    while (!stop.load(std::memory_order_acquire)) {
      (void)ProfileSampleTotal();
      (void)ProfileDropTotal();
      std::this_thread::yield();
    }
  });

  std::uint64_t violations = 0;
  std::uint64_t delivered = 0;
  for (auto& profiler : profilers) {
    InstallProfiler(profiler.get());
    // Let the workers take samples under this generation; the loop in
    // each worker burns ~real CPU so ITIMER_PROF fires quickly.
    volatile std::uint64_t sink = 0;
    for (int spin = 0; spin < 40; ++spin) {
      ScopedSpan span(TracePhase::kCelfPop);
      for (int j = 0; j < 20000; ++j) sink = sink + static_cast<unsigned>(j);
      std::this_thread::yield();
    }
    InstallProfiler(nullptr);
    // After uninstall the rings are quiesced: drain immediately while
    // the workers keep spinning spans against the next generation.
    const ProfDrainResult drained = profiler->Drain();
    violations += CountViolations(drained);
    delivered += drained.samples + drained.orphaned;
  }

  stop.store(true, std::memory_order_release);
  for (std::thread& worker : workers) worker.join();
  scraper.join();

  EXPECT_EQ(violations, 0u);
  // Across 8 install windows on a busy process some samples must land
  // (delivered counts orphans too, so this holds even if registration
  // always loses the race).
  EXPECT_GE(delivered, 1u);
  // The last uninstall latched its totals for post-run scrapes.
  EXPECT_EQ(ProfileSampleTotal(), profilers.back()->SampleTotal());
  EXPECT_EQ(ProfileDropTotal(), profilers.back()->DroppedTotal());
}

}  // namespace
}  // namespace tdmd::obs
