#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace tdmd {
namespace {

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  SplitMix64 a(1234);
  SplitMix64 b(1234);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngTest, SameSeedSameStream) {
  Rng a(99), b(99);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, ReseedRestartsStream) {
  Rng a(7);
  const std::uint64_t first = a.Next();
  a.Seed(7);
  EXPECT_EQ(a.Next(), first);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(5);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL}) {
    for (int i = 0; i < 500; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedOneAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.NextBounded(1), 0u);
  }
}

TEST(RngTest, NextBoundedCoversAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    seen.insert(rng.NextBounded(7));
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t x = rng.NextInt(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
    saw_lo |= (x == -3);
    saw_hi |= (x == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(17);
  double sum = 0.0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    const double x = rng.NextDouble();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  // Mean of U[0,1) is 0.5; stderr ~ 0.29/sqrt(20000) ~ 0.002.
  EXPECT_NEAR(sum / kSamples, 0.5, 0.02);
}

TEST(RngTest, NextBoolMatchesProbability) {
  Rng rng(23);
  int heads = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    heads += rng.NextBool(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(heads) / kSamples, 0.3, 0.02);
}

TEST(RngTest, GaussianMomentsAreStandard) {
  Rng rng(31);
  double sum = 0.0, sum_sq = 0.0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / kSamples, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / kSamples, 1.0, 0.05);
}

TEST(RngTest, SplitStreamsDecorrelated) {
  Rng parent(41);
  Rng child = parent.Split();
  int equal = 0;
  for (int i = 0; i < 256; ++i) {
    if (parent.Next() == child.Next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(53);
  std::vector<int> items(100);
  for (int i = 0; i < 100; ++i) items[static_cast<std::size_t>(i)] = i;
  std::vector<int> shuffled = items;
  rng.Shuffle(shuffled);
  EXPECT_NE(shuffled, items);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(RngTest, ShuffleSingleAndEmptyAreNoops) {
  Rng rng(1);
  std::vector<int> empty;
  rng.Shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{42};
  rng.Shuffle(one);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~std::uint64_t{0});
  Rng rng(2);
  EXPECT_NE(rng(), rng());
}

}  // namespace
}  // namespace tdmd
