// Fault-tolerant serving (DESIGN.md Section 9): deterministic fault
// replay, deadline-expired prefix adoption, retry/backoff accounting and
// the NORMAL -> DEGRADED -> PATCH_ONLY -> NORMAL round trip.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "engine/churn_trace.hpp"
#include "engine/engine.hpp"
#include "faults/faults.hpp"
#include "topology/generators.hpp"

namespace tdmd::engine {
namespace {

graph::Digraph TestNetwork(std::uint64_t seed, VertexId n = 20) {
  Rng rng(seed);
  return topology::Waxman(n, 0.5, 0.4, rng);
}

/// Descending line digraph n-1 -> n-2 -> ... -> 0.  With flows routed
/// down the whole line, the feasibility patch (ties toward the lowest
/// vertex id) deploys at vertex 0 while the greedy solver's first pick is
/// the path head n-1 (maximal downstream gain) — so a 1-box solver prefix
/// genuinely differs from the patched plan.
graph::Digraph DescendingLineNetwork(VertexId n) {
  graph::DigraphBuilder builder(n);
  for (VertexId v = n - 1; v > 0; --v) builder.AddArc(v, v - 1);
  return builder.Build();
}

traffic::Flow DescendingLineFlow(Rate rate, VertexId from) {
  traffic::Flow f;
  f.rate = rate;
  for (VertexId v = from; v >= 0; --v) f.path.vertices.push_back(v);
  f.src = from;
  f.dst = 0;
  return f;
}

ChurnTrace MakeTrace(const graph::Digraph& network, std::size_t epochs,
                     std::uint64_t seed) {
  core::ChurnModel churn;
  churn.arrival_count = 6;
  churn.departure_probability = 0.25;
  Rng rng(seed);
  return BuildChurnTrace(network, churn, epochs, 0, rng);
}

void Replay(Engine& engine, const ChurnTrace& trace,
            std::vector<FlowTicket>& active) {
  for (const ChurnEpoch& epoch : trace.epochs) {
    std::vector<FlowTicket> departing;
    for (std::size_t position : epoch.departures) {
      ASSERT_LT(position, active.size());
      departing.push_back(active[position]);
    }
    for (auto it = epoch.departures.rbegin(); it != epoch.departures.rend();
         ++it) {
      active.erase(active.begin() + static_cast<std::ptrdiff_t>(*it));
    }
    const Engine::BatchResult result =
        engine.SubmitBatch(epoch.arrivals, departing);
    active.insert(active.end(), result.tickets.begin(),
                  result.tickets.end());
  }
}

// Same seed => same injected fault sequence => byte-identical final
// deployments and identical counters, run-to-run (ISSUE acceptance:
// deterministic fault replay).
TEST(EngineFaultTest, SameSeedReplaysByteIdentically) {
  faults::FaultSpec spec;
  spec.seed = 2024;
  spec.at(faults::FaultSite::kIndexDelta).throw_probability = 0.1;
  spec.at(faults::FaultSite::kGreedyRound).throw_probability = 0.05;
  spec.at(faults::FaultSite::kGreedyRound).cancel_probability = 0.05;

  const graph::Digraph network = TestNetwork(41);
  const ChurnTrace trace = MakeTrace(network, 10, 51);

  struct RunResult {
    std::string deployment;
    Bandwidth bandwidth = 0.0;
    std::vector<faults::FaultEvent> events;
    std::uint64_t retries = 0;
    std::uint64_t failures = 0;
  };
  const auto run = [&]() {
    faults::FaultInjector injector(spec);
    EngineOptions options;
    options.k = 5;
    options.synchronous = true;
    options.fault_injector = &injector;
    Engine engine(network, options);
    std::vector<FlowTicket> active;
    Replay(engine, trace, active);
    const auto snapshot = engine.CurrentSnapshot();
    return RunResult{snapshot->deployment.ToString(), snapshot->bandwidth,
                     injector.Events(), engine.stats().index_fault_retries,
                     engine.stats().resolve_failures};
  };

  const RunResult first = run();
  const RunResult second = run();
  EXPECT_FALSE(first.events.empty());  // the spec actually fired
  EXPECT_EQ(first.events, second.events);
  EXPECT_EQ(first.deployment, second.deployment);
  EXPECT_EQ(first.bandwidth, second.bandwidth);  // bit-exact, not approx
  EXPECT_EQ(first.retries, second.retries);
  EXPECT_EQ(first.failures, second.failures);
}

// Injected index-delta throws fire before any mutation, so the engine's
// retry loop absorbs them: churn still lands exactly once.
TEST(EngineFaultTest, IndexDeltaFaultsAreRetriedWithoutStateDamage) {
  faults::FaultSpec spec;
  spec.seed = 7;
  spec.at(faults::FaultSite::kIndexDelta).throw_probability = 0.4;
  faults::FaultInjector injector(spec);

  EngineOptions options;
  options.k = 4;
  options.synchronous = true;
  options.fault_injector = &injector;
  Engine engine(TestNetwork(42), options);

  const ChurnTrace trace = MakeTrace(engine.index().network(), 8, 52);
  std::vector<FlowTicket> active;
  Replay(engine, trace, active);

  const EngineStats stats = engine.stats();
  EXPECT_GT(stats.index_fault_retries, 0u);
  // Every arrival landed once despite the injected throws.
  EXPECT_EQ(engine.index().active_flows(), active.size());
  EXPECT_TRUE(engine.CurrentSnapshot()->feasible);
  for (FlowTicket t : active) {
    EXPECT_NE(engine.index().Find(t), nullptr);
  }
}

// A delay-stalled solve that overruns its deadline returns the greedy
// prefix selected so far; by Theorem 2 that prefix is a valid deployment,
// and here (single shared path, k >= 1) it is even feasible, so the
// engine adopts it as a degraded answer.
TEST(EngineFaultTest, DeadlineExpiredPrefixIsAdopted) {
  faults::FaultSpec spec;
  spec.seed = 3;
  spec.at(faults::FaultSite::kGreedyRound).delay_probability = 1.0;
  spec.at(faults::FaultSite::kGreedyRound).delay =
      std::chrono::milliseconds(5);
  faults::FaultInjector injector(spec);

  EngineOptions options;
  options.k = 3;
  options.synchronous = true;
  options.fault_injector = &injector;
  options.solve_deadline = std::chrono::milliseconds(1);
  options.max_resolve_retries = 1;
  Engine engine(DescendingLineNetwork(6), options);

  traffic::FlowSet arrivals;
  arrivals.push_back(DescendingLineFlow(4, 5));
  arrivals.push_back(DescendingLineFlow(2, 5));
  engine.SubmitBatch(arrivals, {});

  const EngineStats stats = engine.stats();
  EXPECT_GT(stats.resolve_timeouts, 0u);
  EXPECT_GT(stats.resolves_expired_adopted, 0u);
  const auto snapshot = engine.CurrentSnapshot();
  EXPECT_TRUE(snapshot->feasible);
  EXPECT_FALSE(snapshot->deployment.empty());
  EXPECT_LE(snapshot->deployment.size(), options.k);
  // The adopted prefix is the solver's pick (the path head), not the
  // patch's lowest-id tie-break — proof the expired result landed.
  EXPECT_TRUE(snapshot->deployment.Contains(5));
}

// Persistent solver failures walk the state machine down to PATCH_ONLY;
// the synchronous patch keeps every coverable flow served throughout; and
// once the fault burst ends, a probe re-solve brings the engine back to
// NORMAL within the probe interval (ISSUE acceptance: degradation round
// trip).
TEST(EngineFaultTest, DegradationRoundTrip) {
  faults::FaultSpec spec;
  spec.seed = 11;
  spec.at(faults::FaultSite::kGreedyRound).throw_probability = 1.0;
  faults::FaultInjector injector(spec);

  EngineOptions options;
  options.k = 5;
  options.synchronous = true;
  options.fault_injector = &injector;
  options.max_resolve_retries = 1;
  options.degrade_after_failures = 1;
  options.patch_only_after_failures = 2;
  options.probe_interval_epochs = 2;
  Engine engine(TestNetwork(43), options);

  const ChurnTrace trace = MakeTrace(engine.index().network(), 4, 53);
  std::vector<FlowTicket> active;
  for (const ChurnEpoch& epoch : trace.epochs) {
    const Engine::BatchResult result =
        engine.SubmitBatch(epoch.arrivals, {});
    active.insert(active.end(), result.tickets.begin(),
                  result.tickets.end());
    // Degraded or not, the patch keeps the published plan feasible.
    EXPECT_TRUE(engine.CurrentSnapshot()->feasible);
  }
  EXPECT_EQ(engine.mode(), EngineMode::kPatchOnly);
  EXPECT_GT(engine.stats().resolve_failures, 0u);
  EXPECT_GT(engine.stats().patch_only_epochs, 0u);

  // Fault burst ends; within probe_interval_epochs clean epochs a probe
  // re-solve completes and the machine recovers.
  injector.Disarm();
  for (std::uint64_t i = 0; i < options.probe_interval_epochs; ++i) {
    engine.SubmitBatch({}, {});
    EXPECT_TRUE(engine.CurrentSnapshot()->feasible);
  }
  EXPECT_EQ(engine.mode(), EngineMode::kNormal);
  const EngineStats stats = engine.stats();
  EXPECT_GE(stats.mode_transitions, 3u);  // down (x2) and back up
  EXPECT_EQ(stats.consecutive_failures, 0u);
  EXPECT_GT(stats.resolves_completed, 0u);
}

// Every started attempt lands in exactly one terminal bucket, faults or
// not (no kPoolTask drops here, so the strict invariant holds).
TEST(EngineFaultTest, ResolveAccountingBalancesUnderFaults) {
  faults::FaultSpec spec;
  spec.seed = 17;
  spec.at(faults::FaultSite::kGreedyRound).throw_probability = 0.2;
  spec.at(faults::FaultSite::kGreedyRound).cancel_probability = 0.2;
  faults::FaultInjector injector(spec);

  EngineOptions options;
  options.k = 4;
  options.synchronous = false;
  options.solver_threads = 2;
  options.fault_injector = &injector;
  Engine engine(TestNetwork(44), options);

  const ChurnTrace trace = MakeTrace(engine.index().network(), 15, 54);
  std::vector<FlowTicket> active;
  Replay(engine, trace, active);
  engine.WaitIdle();

  const EngineStats stats = engine.stats();
  // Under faults the degraded modes coalesce or skip re-solves, so
  // started can be well below the epoch count; what must hold is that
  // every started attempt landed in exactly one terminal bucket.
  EXPECT_GT(stats.resolves_started, 0u);
  EXPECT_EQ(stats.resolves_started,
            stats.resolves_completed + stats.resolves_cancelled +
                stats.resolve_failures + stats.resolve_timeouts);
  EXPECT_TRUE(engine.CurrentSnapshot()->feasible);
}

// The no-fault async invariant from engine_test stays intact when a
// disarmed injector is installed (the hooks are pure pass-throughs).
TEST(EngineFaultTest, DisarmedInjectorChangesNothing) {
  faults::FaultSpec spec;
  spec.seed = 23;
  spec.at(faults::FaultSite::kGreedyRound).throw_probability = 1.0;
  faults::FaultInjector injector(spec);
  injector.Disarm();

  EngineOptions options;
  options.k = 4;
  options.synchronous = true;
  options.fault_injector = &injector;
  Engine engine(TestNetwork(45), options);

  const ChurnTrace trace = MakeTrace(engine.index().network(), 6, 55);
  std::vector<FlowTicket> active;
  Replay(engine, trace, active);

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.resolve_failures, 0u);
  EXPECT_EQ(stats.index_fault_retries, 0u);
  EXPECT_EQ(stats.resolves_started, stats.resolves_completed);
  EXPECT_EQ(engine.mode(), EngineMode::kNormal);
  EXPECT_TRUE(injector.Events().empty());
}

}  // namespace
}  // namespace tdmd::engine
