#include "graph/traversal.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "topology/generators.hpp"

namespace tdmd::graph {
namespace {

Digraph LineGraph(VertexId n) {
  DigraphBuilder builder(n);
  for (VertexId v = 0; v + 1 < n; ++v) builder.AddArc(v, v + 1);
  return builder.Build();
}

TEST(BfsTest, DistancesOnALine) {
  Digraph g = LineGraph(5);
  BfsResult bfs = BreadthFirst(g, 0);
  for (VertexId v = 0; v < 5; ++v) {
    EXPECT_EQ(bfs.dist[static_cast<std::size_t>(v)], v);
  }
  EXPECT_EQ(bfs.order.front(), 0);
  EXPECT_EQ(bfs.order.size(), 5u);
}

TEST(BfsTest, UnreachableMarkedMinusOne) {
  Digraph g = LineGraph(4);
  BfsResult bfs = BreadthFirst(g, 2);
  EXPECT_EQ(bfs.dist[0], -1);
  EXPECT_EQ(bfs.dist[1], -1);
  EXPECT_EQ(bfs.dist[2], 0);
  EXPECT_EQ(bfs.dist[3], 1);
}

TEST(BfsTest, ParentChainLeadsBackToSource) {
  DigraphBuilder builder(6);
  builder.AddBidirectional(0, 1);
  builder.AddBidirectional(1, 2);
  builder.AddBidirectional(0, 3);
  builder.AddBidirectional(3, 4);
  builder.AddBidirectional(4, 5);
  Digraph g = builder.Build();
  BfsResult bfs = BreadthFirst(g, 0);
  VertexId v = 5;
  int hops = 0;
  while (v != 0) {
    v = bfs.parent[static_cast<std::size_t>(v)];
    ASSERT_NE(v, kInvalidVertex);
    ++hops;
  }
  EXPECT_EQ(hops, bfs.dist[5]);
}

TEST(BfsTest, ReverseBfsFollowsInArcs) {
  Digraph g = LineGraph(4);
  BfsResult bfs = BreadthFirstReverse(g, 3);
  EXPECT_EQ(bfs.dist[0], 3);
  EXPECT_EQ(bfs.dist[3], 0);
}

TEST(ReachabilityTest, ReachableFromCountsDownstream) {
  Digraph g = LineGraph(5);
  EXPECT_EQ(ReachableFrom(g, 0).size(), 5u);
  EXPECT_EQ(ReachableFrom(g, 3).size(), 2u);
}

TEST(ConnectivityTest, WeaklyConnectedLine) {
  EXPECT_TRUE(IsWeaklyConnected(LineGraph(6)));
}

TEST(ConnectivityTest, DisconnectedDetected) {
  DigraphBuilder builder(4);
  builder.AddBidirectional(0, 1);
  builder.AddBidirectional(2, 3);
  EXPECT_FALSE(IsWeaklyConnected(builder.Build()));
}

TEST(ConnectivityTest, SingletonAndEmptyAreConnected) {
  EXPECT_TRUE(IsWeaklyConnected(DigraphBuilder(0).Build()));
  EXPECT_TRUE(IsWeaklyConnected(DigraphBuilder(1).Build()));
}

TEST(ConnectivityTest, DirectedLineNotStronglyConnected) {
  EXPECT_FALSE(IsStronglyConnected(LineGraph(3)));
}

TEST(ConnectivityTest, BidirectionalRingStronglyConnected) {
  DigraphBuilder builder(5);
  for (VertexId v = 0; v < 5; ++v) {
    builder.AddBidirectional(v, (v + 1) % 5);
  }
  EXPECT_TRUE(IsStronglyConnected(builder.Build()));
}

TEST(DfsTest, PreorderVisitsReachableOnce) {
  Rng rng(7);
  Digraph g = topology::ErdosRenyi(30, 0.1, rng);
  const std::vector<VertexId> order = DepthFirstPreorder(g, 0);
  std::vector<char> seen(30, 0);
  for (VertexId v : order) {
    EXPECT_FALSE(seen[static_cast<std::size_t>(v)]) << "revisited " << v;
    seen[static_cast<std::size_t>(v)] = 1;
  }
  EXPECT_EQ(order.front(), 0);
}

TEST(DfsTest, PreorderDeterministic) {
  Rng rng(9);
  Digraph g = topology::Waxman(25, 0.5, 0.4, rng);
  EXPECT_EQ(DepthFirstPreorder(g, 0), DepthFirstPreorder(g, 0));
}

}  // namespace
}  // namespace tdmd::graph
