#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "experiment/stats.hpp"
#include "experiment/sweep.hpp"
#include "experiment/table.hpp"
#include "experiment/timer.hpp"

namespace tdmd::experiment {
namespace {

TEST(StatsTest, MeanAndVarianceOfKnownSamples) {
  Stats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.Add(x);
  }
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(StatsTest, SingleSampleHasZeroSpread) {
  Stats stats;
  stats.Add(3.5);
  EXPECT_DOUBLE_EQ(stats.mean(), 3.5);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.stderr_mean(), 0.0);
}

TEST(StatsTest, StderrShrinksWithSamples) {
  Stats small, large;
  Rng rng(1);
  for (int i = 0; i < 10; ++i) small.Add(rng.NextGaussian());
  rng.Seed(1);
  for (int i = 0; i < 1000; ++i) large.Add(rng.NextGaussian());
  EXPECT_LT(large.stderr_mean(), small.stderr_mean());
}

TEST(StatsTest, MergeEqualsSequential) {
  Rng rng(5);
  Stats sequential, left, right;
  for (int i = 0; i < 200; ++i) {
    const double x = rng.NextDouble(-10, 10);
    sequential.Add(x);
    (i % 2 == 0 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), sequential.count());
  EXPECT_NEAR(left.mean(), sequential.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), sequential.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), sequential.min());
  EXPECT_DOUBLE_EQ(left.max(), sequential.max());
}

TEST(StatsTest, MergeWithEmptySides) {
  Stats a, b;
  a.Add(1.0);
  a.Add(3.0);
  a.Merge(b);  // empty rhs: no-op
  EXPECT_EQ(a.count(), 2u);
  b.Merge(a);  // empty lhs: copy
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(TimerTest, ElapsedIsPositiveAndMonotone) {
  Timer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + std::sqrt(i);
  const double first = timer.ElapsedSeconds();
  EXPECT_GT(first, 0.0);
  for (int i = 0; i < 100000; ++i) sink = sink + std::sqrt(i);
  EXPECT_GE(timer.ElapsedSeconds(), first);
}

TEST(TimerTest, RestartResetsTheOrigin) {
  Timer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 200000; ++i) sink = sink + std::sqrt(i);
  const double before = timer.ElapsedSeconds();
  timer.Restart();
  EXPECT_LT(timer.ElapsedSeconds(), before);
}

TEST(TableTest, AlignedOutputContainsEverything) {
  Table table("demo");
  table.SetHeader({"k", "DP", "HAT"});
  table.AddRow({"1", "24", "24"});
  table.AddRow({"2", "16.5", "16.5"});
  std::ostringstream oss;
  table.Print(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("DP"), std::string::npos);
  EXPECT_NE(out.find("16.5"), std::string::npos);
}

TEST(TableTest, CsvRoundTrip) {
  Table table("demo");
  table.SetHeader({"x", "y"});
  table.AddRow({"1", "2"});
  std::ostringstream oss;
  table.PrintCsv(oss);
  EXPECT_EQ(oss.str(), "x,y\n1,2\n");
}

TEST(TableDeathTest, RowWidthMismatchAborts) {
  Table table("demo");
  table.SetHeader({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only-one"}), "width");
}

TEST(FormatNumberTest, Precision) {
  EXPECT_EQ(FormatNumber(3.14159, 3), "3.14");
  EXPECT_EQ(FormatNumber(120000.0, 4), "1.2e+05");
  EXPECT_EQ(FormatNumber(5.0, 4), "5");
}

TEST(SweepTest, RunsEveryCellWithRightCounts) {
  SweepConfig config;
  config.x_name = "k";
  config.x_values = {1, 2, 3};
  config.trials = 5;
  config.threads = 2;
  SweepResult result = RunSweep(
      config, {"algoA", "algoB"}, [](double x, Rng& rng) {
        std::vector<Measurement> ms(2);
        ms[0].bandwidth = x * 10.0 + rng.NextDouble();
        ms[0].feasible = true;
        ms[1].bandwidth = x * 20.0;
        ms[1].feasible = false;
        return ms;
      });
  ASSERT_EQ(result.series.size(), 2u);
  for (std::size_t xi = 0; xi < 3; ++xi) {
    EXPECT_EQ(result.series[0].bandwidth[xi].count(), 5u);
    EXPECT_NEAR(result.series[0].bandwidth[xi].mean(),
                config.x_values[xi] * 10.0 + 0.5, 0.6);
    EXPECT_EQ(result.series[1].infeasible_trials[xi], 5u);
    EXPECT_EQ(result.series[0].infeasible_trials[xi], 0u);
  }
}

TEST(SweepTest, DeterministicAcrossThreadCounts) {
  // The (seed, x, trial) -> rng stream derivation must make results
  // independent of scheduling.
  auto run = [](std::size_t threads) {
    SweepConfig config;
    config.x_name = "x";
    config.x_values = {1, 2};
    config.trials = 8;
    config.seed = 1234;
    config.threads = threads;
    return RunSweep(config, {"a"}, [](double x, Rng& rng) {
      std::vector<Measurement> ms(1);
      ms[0].bandwidth = x + rng.NextDouble();
      ms[0].feasible = true;
      return ms;
    });
  };
  const SweepResult serial = run(1);
  const SweepResult parallel = run(8);
  for (std::size_t xi = 0; xi < 2; ++xi) {
    EXPECT_DOUBLE_EQ(serial.series[0].bandwidth[xi].mean(),
                     parallel.series[0].bandwidth[xi].mean());
  }
}

TEST(SweepTest, TablesAndCsvRender) {
  SweepConfig config;
  config.x_name = "lambda";
  config.x_values = {0.0, 0.5};
  config.trials = 3;
  config.threads = 1;
  SweepResult result =
      RunSweep(config, {"DP"}, [](double x, Rng&) {
        std::vector<Measurement> ms(1);
        ms[0].bandwidth = 100.0 * (1.0 + x);
        ms[0].seconds = 0.001;
        ms[0].feasible = x > 0.25;  // force an infeasible footnote
        return ms;
      });
  std::ostringstream tables;
  PrintSweepTables(tables, "Fig X", result);
  EXPECT_NE(tables.str().find("Fig X — bandwidth"), std::string::npos);
  EXPECT_NE(tables.str().find("execution time"), std::string::npos);
  EXPECT_NE(tables.str().find("infeasible trials:"), std::string::npos);
  std::ostringstream csv;
  PrintSweepCsv(csv, result);
  EXPECT_NE(csv.str().find("x,algorithm,metric,mean,stderr,count"),
            std::string::npos);
  EXPECT_NE(csv.str().find("DP,bandwidth,"), std::string::npos);
}

}  // namespace
}  // namespace tdmd::experiment
