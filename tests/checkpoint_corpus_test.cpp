// Fuzz-style corpus over the two checkpoint file grammars (`shardfleet
// v1` and `engine-checkpoint v1`): truncation at every line boundary,
// bit-flipped CRC trailers, duplicated sections re-wrapped with a valid
// CRC (so the *parser*, not the checksum, must reject), and oversized
// declared counts.  Every corrupt file must be rejected with a
// diagnostic and without crashing — the suite runs under ASan/UBSan in
// CI (label `shard`).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "engine/churn_trace.hpp"
#include "engine/engine.hpp"
#include "io/atomic_file.hpp"
#include "io/text_format.hpp"
#include "shard/fleet_io.hpp"
#include "shard/sharded_engine.hpp"
#include "common/rng.hpp"
#include "topology/generators.hpp"

namespace tdmd {
namespace {

std::string TempPath(const std::string& name) {
  // Unique per test process: gtest_discover_tests runs every TEST_F as
  // its own process, and parallel ctest must not share corpus files.
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  return ::testing::TempDir() + "/" + std::to_string(::getpid()) + "_" +
         (info != nullptr ? std::string(info->name()) + "_" : "") + name;
}

void WriteRaw(const std::string& path, const std::string& content) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os << content;
}

std::string Slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

/// Splits into lines, each keeping its trailing '\n'.
std::vector<std::string> Lines(const std::string& content) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < content.size()) {
    std::size_t end = content.find('\n', start);
    if (end == std::string::npos) end = content.size() - 1;
    lines.push_back(content.substr(start, end - start + 1));
    start = end + 1;
  }
  return lines;
}

/// Re-wraps a (mutated) payload with a freshly computed CRC trailer, so
/// only the grammar can reject it.
std::string ReWrap(const std::string& payload) {
  return payload + io::CrcTrailerLine(payload);
}

graph::Digraph TestNetwork(std::uint64_t seed) {
  Rng rng(seed);
  return topology::Waxman(14, 0.6, 0.5, rng);
}

std::string BuildFleetFile(const std::string& path) {
  const graph::Digraph g = TestNetwork(11);
  shard::ShardedEngineOptions options;
  options.partition.num_shards = 2;
  options.total_budget = 4;
  options.engine.lambda = 0.5;
  options.realloc_interval_epochs = 0;
  options.pin_threads = false;
  shard::ShardedEngine fleet(g, options);

  core::ChurnModel churn;
  churn.arrival_count = 4;
  churn.departure_probability = 0.2;
  const engine::ChurnTrace trace =
      engine::BuildChurnTrace(g, churn, 3, 0, 5);
  std::vector<shard::FlowId64> active;
  for (const engine::ChurnEpoch& epoch : trace.epochs) {
    active = fleet.SubmitBatch(epoch.arrivals, {}).flow_ids;
  }
  fleet.Drain();
  EXPECT_TRUE(shard::WriteFleetCheckpointFile(path, fleet.Checkpoint()));
  return Slurp(path);
}

std::string BuildEngineFile(const std::string& path) {
  const graph::Digraph g = TestNetwork(13);
  engine::EngineOptions options;
  options.k = 3;
  options.lambda = 0.5;
  engine::Engine eng(g, options);

  core::ChurnModel churn;
  churn.arrival_count = 6;
  churn.departure_probability = 0.0;
  const engine::ChurnTrace trace =
      engine::BuildChurnTrace(g, churn, 2, 0, 9);
  for (const engine::ChurnEpoch& epoch : trace.epochs) {
    eng.SubmitBatch(epoch.arrivals, {});
  }
  eng.WaitIdle();
  EXPECT_TRUE(io::WriteEngineCheckpointFile(path, eng.Checkpoint()));
  return Slurp(path);
}

bool FleetParses(const std::string& path) {
  const io::Parsed<shard::FleetCheckpoint> parsed =
      shard::ReadFleetCheckpointFile(path);
  if (!parsed.ok()) {
    EXPECT_FALSE(parsed.error.empty()) << "rejection without a diagnostic";
  }
  return parsed.ok();
}

bool EngineParses(const std::string& path) {
  const io::Parsed<engine::EngineCheckpoint> parsed =
      io::ReadEngineCheckpointFile(path);
  if (!parsed.ok()) {
    EXPECT_FALSE(parsed.error.empty()) << "rejection without a diagnostic";
  }
  return parsed.ok();
}

class CheckpointCorpusTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fleet_path_ = TempPath("corpus_fleet.ckpt");
    engine_path_ = TempPath("corpus_engine.ckpt");
    fleet_file_ = BuildFleetFile(fleet_path_);
    engine_file_ = BuildEngineFile(engine_path_);
    ASSERT_TRUE(FleetParses(fleet_path_));
    ASSERT_TRUE(EngineParses(engine_path_));
  }

  void TearDown() override {
    std::remove(fleet_path_.c_str());
    std::remove(engine_path_.c_str());
  }

  std::string fleet_path_, engine_path_;
  std::string fleet_file_, engine_file_;
};

TEST_F(CheckpointCorpusTest, FleetTruncationAtEveryLineBoundary) {
  const std::vector<std::string> lines = Lines(fleet_file_);
  ASSERT_GT(lines.size(), 10u);
  std::string prefix;
  for (std::size_t i = 0; i + 1 < lines.size(); ++i) {
    WriteRaw(fleet_path_, prefix);  // i lines, trailer always missing
    EXPECT_FALSE(FleetParses(fleet_path_))
        << "accepted a " << i << "-line truncation";
    prefix += lines[i];
  }
}

TEST_F(CheckpointCorpusTest, EngineTruncationAtEveryLineBoundary) {
  const std::vector<std::string> lines = Lines(engine_file_);
  ASSERT_GT(lines.size(), 10u);
  std::string prefix;
  for (std::size_t i = 0; i + 1 < lines.size(); ++i) {
    WriteRaw(engine_path_, prefix);
    EXPECT_FALSE(EngineParses(engine_path_))
        << "accepted a " << i << "-line truncation";
    prefix += lines[i];
  }
}

TEST_F(CheckpointCorpusTest, BitFlippedTrailerRejected) {
  // Flip every character of the CRC trailer line in turn (hex digits,
  // byte count, even the tag itself) — none may verify.
  const std::size_t trailer_start = fleet_file_.rfind("# tdmd-crc32");
  ASSERT_NE(trailer_start, std::string::npos);
  for (std::size_t i = trailer_start; i + 1 < fleet_file_.size(); ++i) {
    std::string corrupt = fleet_file_;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x04);
    WriteRaw(fleet_path_, corrupt);
    EXPECT_FALSE(FleetParses(fleet_path_))
        << "accepted trailer flip at byte " << i;
  }
}

TEST_F(CheckpointCorpusTest, DuplicatedSectionsRejected) {
  const std::string payload =
      fleet_file_.substr(0, fleet_file_.rfind("# tdmd-crc32"));
  const std::vector<std::string> lines = Lines(payload);

  // Duplicate whole sections in place, re-wrapped with a valid CRC so
  // the strictly-ordered grammar (not the checksum) must reject: every
  // directive has one expected position, so a repeated section always
  // collides with the next expected line.
  const std::vector<std::pair<std::string, std::string>> sections = {
      {"num-shards", "num-shards"},        // header scalar
      {"budget 0", "budget 1"},            // one budget row
      {"flow-table", "shard 0"},           // whole flow table w/ header
      {"shard 0", "shard 1"},              // whole first engine block
  };
  for (const auto& [from, to] : sections) {
    std::size_t begin = lines.size(), end = lines.size();
    for (std::size_t i = 0; i < lines.size(); ++i) {
      if (begin == lines.size() &&
          lines[i].compare(0, from.size(), from) == 0) {
        begin = i;
      } else if (begin != lines.size() &&
                 lines[i].compare(0, to.size(), to) == 0) {
        end = i;
        break;
      }
    }
    ASSERT_LT(begin, end) << "section '" << from << "' not found";
    std::string mutated;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      mutated += lines[i];
      if (i + 1 == end) {  // re-emit the section right after itself
        for (std::size_t j = begin; j < end; ++j) mutated += lines[j];
      }
    }
    WriteRaw(fleet_path_, ReWrap(mutated));
    EXPECT_FALSE(FleetParses(fleet_path_))
        << "accepted duplicated section '" << from << "'";
  }
}

TEST_F(CheckpointCorpusTest, OversizedDeclaredCountsRejected) {
  // An absurd declared count must fail at the first missing record —
  // quickly and without a giant up-front allocation (reserves are
  // capped), which ASan would surface as an OOM or timeout here.
  const auto inflate = [](const std::string& content,
                          const std::string& key) {
    std::string mutated;
    for (const std::string& line : Lines(content)) {
      if (line.compare(0, key.size(), key) == 0) {
        mutated += key + " 1152921504606846976\n";  // 2^60
      } else {
        mutated += line;
      }
    }
    return mutated;
  };

  const std::string fleet_payload =
      fleet_file_.substr(0, fleet_file_.rfind("# tdmd-crc32"));
  WriteRaw(fleet_path_, ReWrap(inflate(fleet_payload, "flow-table")));
  EXPECT_FALSE(FleetParses(fleet_path_));

  const std::string engine_payload =
      engine_file_.substr(0, engine_file_.rfind("# tdmd-crc32"));
  for (const std::string key : {"flows", "deployment"}) {
    const std::string mutated = inflate(engine_payload, key);
    if (mutated == engine_payload) continue;  // section absent
    WriteRaw(engine_path_, ReWrap(mutated));
    EXPECT_FALSE(EngineParses(engine_path_))
        << "accepted oversized '" << key << "' count";
  }
}

TEST_F(CheckpointCorpusTest, EveryLineDuplicationIsCrashFree) {
  // Blanket sweep: duplicating ANY single payload line (valid CRC) must
  // never crash the parser.  Most duplications are grammar errors; a
  // handful of list rows may legitimately re-parse — this sweep asserts
  // memory safety, the section test above asserts rejection.
  const std::string payload =
      fleet_file_.substr(0, fleet_file_.rfind("# tdmd-crc32"));
  const std::vector<std::string> lines = Lines(payload);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::string mutated;
    for (std::size_t j = 0; j < lines.size(); ++j) {
      mutated += lines[j];
      if (j == i) mutated += lines[j];
    }
    WriteRaw(fleet_path_, ReWrap(mutated));
    (void)FleetParses(fleet_path_);  // must not crash; outcome free
  }
}

}  // namespace
}  // namespace tdmd
