// End-to-end causal tracing of the sharded fleet (DESIGN.md Section 15):
// a real traced 4-shard run must reconstruct (nearly) every batch into
// one connected submit -> dequeue -> patch -> adopt critical path in
// fleet-report, the admission-to-adoption latency pipeline must surface
// as mergeable tdmd_fleet_e2e_* histograms, the SLO-burn detector must
// raise under sustained violation and clear once the burn stops, and
// recovery/shed instants must land in both trace-report and
// fleet-report.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "engine/churn_trace.hpp"
#include "faults/faults.hpp"
#include "obs/fleet_report.hpp"
#include "obs/trace.hpp"
#include "obs/trace_report.hpp"
#include "shard/sharded_engine.hpp"
#include "topology/generators.hpp"

namespace tdmd::shard {
namespace {

class ScopedInstall {
 public:
  explicit ScopedInstall(obs::Tracer* tracer) { obs::InstallTracer(tracer); }
  ~ScopedInstall() { obs::InstallTracer(nullptr); }
};

graph::Digraph TestNetwork(std::uint64_t seed, VertexId n = 30) {
  Rng rng(seed);
  return topology::Waxman(n, 0.5, 0.4, rng);
}

engine::ChurnTrace MakeTrace(const graph::Digraph& g, std::size_t epochs,
                             std::uint64_t seed) {
  core::ChurnModel churn;
  churn.arrival_count = 6;
  churn.departure_probability = 0.3;
  return engine::BuildChurnTrace(g, churn, epochs, 0, seed);
}

ShardedEngineOptions FleetOptions(std::size_t shards, std::size_t budget) {
  ShardedEngineOptions options;
  options.partition.num_shards = shards;
  options.total_budget = budget;
  options.engine.lambda = 0.5;
  options.engine.move_threshold = 0.0;
  options.realloc_interval_epochs = 0;
  options.pin_threads = false;
  return options;
}

std::string Prometheus(ShardedEngine& fleet) {
  std::ostringstream os;
  fleet.Metrics().Render(os, obs::MetricsFormat::kPrometheus);
  return os.str();
}

void ReplayFleet(ShardedEngine& fleet, const engine::ChurnTrace& trace,
                 std::vector<FlowId64>& active) {
  for (const engine::ChurnEpoch& epoch : trace.epochs) {
    std::vector<FlowId64> departures;
    departures.reserve(epoch.departures.size());
    for (const std::size_t index : epoch.departures) {
      departures.push_back(active[index]);
    }
    for (auto it = epoch.departures.rbegin(); it != epoch.departures.rend();
         ++it) {
      active.erase(active.begin() + static_cast<std::ptrdiff_t>(*it));
    }
    const ShardedEngine::BatchResult result =
        fleet.SubmitBatch(epoch.arrivals, departures);
    active.insert(active.end(), result.flow_ids.begin(),
                  result.flow_ids.end());
  }
}

// The PR's acceptance check: >= 99% of a traced 4-shard run's batches
// reconstruct into a single connected critical path.
TEST(FleetTraceE2eTest, FourShardTracedRunReconstructsConnectedChains) {
  const graph::Digraph g = TestNetwork(3, 40);
  const engine::ChurnTrace trace = MakeTrace(g, 12, 3);

  obs::Tracer tracer;
  ShardedEngine fleet(g, FleetOptions(4, 8));
  std::vector<FlowId64> active;
  {
    ScopedInstall install(&tracer);
    ReplayFleet(fleet, trace, active);
    fleet.Drain();
  }

  std::ostringstream json;
  WriteChromeTrace(json, tracer.Drain());
  std::istringstream in(json.str());
  const obs::FleetReport report = obs::BuildFleetReport(in);
  ASSERT_TRUE(report.ok) << report.error;
  ASSERT_GE(report.batches, trace.epochs.size());
  const double connected_fraction =
      static_cast<double>(report.connected) /
      static_cast<double>(report.batches);
  EXPECT_GE(connected_fraction, 0.99)
      << report.connected << "/" << report.batches << " connected";
  EXPECT_GT(report.e2e_max_us, 0.0);
  EXPECT_GE(report.e2e_p99_us, report.e2e_p50_us);
  // Every batch's critical path ends on some shard.
  ASSERT_FALSE(report.shards.empty());
  std::uint64_t stragglers = 0;
  for (const obs::FleetShardRow& row : report.shards) {
    stragglers += row.stragglers;
  }
  EXPECT_EQ(stragglers, report.connected);

  std::ostringstream table;
  WriteFleetReport(table, report);
  EXPECT_NE(table.str().find("e2e admission->adoption"), std::string::npos);
}

TEST(FleetTraceE2eTest, MetricsExposeE2ePipelineAndDropTotal) {
  const graph::Digraph g = TestNetwork(5);
  const engine::ChurnTrace trace = MakeTrace(g, 8, 5);
  ShardedEngine fleet(g, FleetOptions(2, 6));
  std::vector<FlowId64> active;
  ReplayFleet(fleet, trace, active);
  fleet.Drain();

  const std::string metrics = Prometheus(fleet);
  // Per-stage pipeline histograms plus the end-to-end quantiles.
  for (const char* name :
       {"tdmd_fleet_e2e_submit_dequeue_seconds",
        "tdmd_fleet_e2e_dequeue_patched_seconds",
        "tdmd_fleet_e2e_patched_adopted_seconds",
        "tdmd_fleet_e2e_admission_adoption_seconds"}) {
    EXPECT_NE(metrics.find(std::string(name) + "_count"),
              std::string::npos)
        << name;
    EXPECT_NE(metrics.find(std::string(name) + "{quantile=\"0.99\"}"),
              std::string::npos)
        << name;
  }
  EXPECT_NE(metrics.find("tdmd_fleet_e2e_batches"), std::string::npos);
  EXPECT_NE(metrics.find("tdmd_fleet_e2e_slo_seconds"), std::string::npos);
  EXPECT_NE(metrics.find("tdmd_fleet_e2e_slo_violations"),
            std::string::npos);
  // The drop total is part of the fleet exposition even with no tracer
  // ever installed (satellite: it must survive tracer uninstall too —
  // see ObsTraceTest.DropTotalSurvivesTracerUninstall).
  EXPECT_NE(metrics.find("tdmd_trace_dropped_total"), std::string::npos);
}

TEST(FleetTraceE2eTest, SloBurnAlertRaisesUnderBurnAndClearsAfter) {
  const graph::Digraph g = TestNetwork(7);
  const engine::ChurnTrace trace = MakeTrace(g, 4, 7);
  ShardedEngineOptions options = FleetOptions(2, 6);
  // A 1ns SLO every batch violates: the violation-fraction stream is
  // 1.0, so the CUSUM (slack 0.05, threshold 0.5) raises on the first
  // sample that sees completed batches.
  options.e2e_slo = std::chrono::nanoseconds(1);
  // Generous slack so the clear drill below drains the accumulator in a
  // bounded number of quiet epochs (the default 0.05 would need ~20
  // clean epochs per burning one).
  options.e2e_alert.slack = 0.25;
  ShardedEngine fleet(g, options);
  std::vector<FlowId64> active;
  for (const engine::ChurnEpoch& epoch : trace.epochs) {
    std::vector<FlowId64> departures;
    departures.reserve(epoch.departures.size());
    for (const std::size_t index : epoch.departures) {
      departures.push_back(active[index]);
    }
    for (auto it = epoch.departures.rbegin(); it != epoch.departures.rend();
         ++it) {
      active.erase(active.begin() + static_cast<std::ptrdiff_t>(*it));
    }
    const ShardedEngine::BatchResult result =
        fleet.SubmitBatch(epoch.arrivals, departures);
    active.insert(active.end(), result.flow_ids.begin(),
                  result.flow_ids.end());
    // Quiesce so the next submit's sample sees this epoch's violations.
    fleet.Drain();
  }
  // One more (empty) submit publishes the final epoch's sample.
  (void)fleet.SubmitBatch({}, {});
  EXPECT_TRUE(fleet.e2e_alert().active());
  EXPECT_GE(fleet.e2e_alert().raised_total(), 1u);

  // Burn over: violation-free samples drain the accumulator at `slack`
  // per epoch until the alert clears (edge at exactly zero).
  for (int i = 0; i < 40 && fleet.e2e_alert().active(); ++i) {
    (void)fleet.SubmitBatch({}, {});
  }
  EXPECT_FALSE(fleet.e2e_alert().active());
  EXPECT_GE(fleet.e2e_alert().cleared_total(), 1u);

  const std::string metrics = Prometheus(fleet);
  EXPECT_NE(metrics.find("tdmd_fleet_e2e_alerts_raised"),
            std::string::npos);
  EXPECT_NE(metrics.find("tdmd_fleet_e2e_alerts_cleared"),
            std::string::npos);

  // A generous SLO over the same churn keeps the detector quiet.
  ShardedEngineOptions quiet_options = FleetOptions(2, 6);
  quiet_options.e2e_slo = std::chrono::seconds(10);
  ShardedEngine quiet(g, quiet_options);
  std::vector<FlowId64> quiet_active;
  ReplayFleet(quiet, trace, quiet_active);
  quiet.Drain();
  (void)quiet.SubmitBatch({}, {});
  EXPECT_FALSE(quiet.e2e_alert().active());
  EXPECT_EQ(quiet.e2e_alert().raised_total(), 0u);
}

TEST(FleetTraceE2eTest, RecoveryAndShedInstantsLandInBothReports) {
  const graph::Digraph g = TestNetwork(9, 20);
  core::ChurnModel churn;
  churn.arrival_count = 5;
  churn.departure_probability = 0.25;
  const engine::ChurnTrace trace =
      engine::BuildChurnTrace(g, churn, 10, 0, 9);

  // Overloaded supervised fleet: bounded queues with a slow consumer
  // force sheds, and an injected crash forces a recovery.
  ShardedEngineOptions options = FleetOptions(2, 4);
  options.supervise = true;
  options.queue_depth = 1;
  options.backpressure_deadline = std::chrono::milliseconds(1);
  options.inject_faults = true;
  options.fault_spec.seed = 31;
  faults::SiteSpec& drain =
      options.fault_spec.at(faults::FaultSite::kQueueDrain);
  drain.delay_probability = 1.0;
  drain.delay = std::chrono::milliseconds(4);

  obs::Tracer tracer;
  std::string json_text;
  FleetStats stats;
  std::string metrics;
  {
    ScopedInstall install(&tracer);
    ShardedEngine fleet(g, options);
    std::vector<FlowId64> active;
    for (std::size_t e = 0; e < trace.epochs.size(); ++e) {
      if (e == 4) fleet.CrashShard(1);
      std::vector<FlowId64> departures;
      departures.reserve(trace.epochs[e].departures.size());
      for (const std::size_t index : trace.epochs[e].departures) {
        departures.push_back(active[index]);
      }
      for (auto it = trace.epochs[e].departures.rbegin();
           it != trace.epochs[e].departures.rend(); ++it) {
        active.erase(active.begin() + static_cast<std::ptrdiff_t>(*it));
      }
      const ShardedEngine::BatchResult result =
          fleet.SubmitBatch(trace.epochs[e].arrivals, departures);
      active.insert(active.end(), result.flow_ids.begin(),
                    result.flow_ids.end());
    }
    fleet.Drain();
    fleet.Supervise();
    for (int tick = 0;
         tick < 200 && fleet.fleet_state() != FleetState::kNormal; ++tick) {
      fleet.Drain();
      fleet.Supervise();
    }
    ASSERT_EQ(fleet.fleet_state(), FleetState::kNormal);
    stats = fleet.stats();
    metrics = Prometheus(fleet);
    std::ostringstream json;
    WriteChromeTrace(json, tracer.Drain());
    json_text = json.str();
  }
  ASSERT_GE(stats.recoveries_completed, 1u);
  ASSERT_GE(stats.shed_batches, 1u);

  // trace-report: both instants appear as named rows.
  std::istringstream trace_in(json_text);
  const obs::TraceReport trace_report = obs::BuildTraceReport(trace_in);
  ASSERT_TRUE(trace_report.ok) << trace_report.error;
  std::uint64_t recovery_rows = 0;
  std::uint64_t shed_rows = 0;
  for (const obs::TraceReportRow& row : trace_report.rows) {
    if (row.name == "shard-recovery") recovery_rows = row.count;
    if (row.name == "shed-batch") shed_rows = row.count;
  }
  EXPECT_EQ(recovery_rows, stats.recoveries_completed);
  EXPECT_EQ(shed_rows, stats.shed_batches);

  // fleet-report: same counts on the summary line.
  std::istringstream fleet_in(json_text);
  const obs::FleetReport fleet_report = obs::BuildFleetReport(fleet_in);
  ASSERT_TRUE(fleet_report.ok) << fleet_report.error;
  EXPECT_EQ(fleet_report.recoveries, stats.recoveries_completed);
  EXPECT_EQ(fleet_report.shed_batches, stats.shed_batches);

  // The metrics dump from this run still carries everything shard-report
  // requires (per-shard rows plus the fleet roll-up).
  for (const char* name :
       {"tdmd_fleet_num_shards", "tdmd_shard0_budget", "tdmd_shard1_budget",
        "tdmd_fleet_recoveries_completed", "tdmd_fleet_shed_batches",
        "tdmd_fleet_epochs", "tdmd_fleet_commands_routed"}) {
    EXPECT_NE(metrics.find(name), std::string::npos) << name;
  }
}

}  // namespace
}  // namespace tdmd::shard
