#include "common/args.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace tdmd {
namespace {

std::vector<const char*> Argv(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args);
  return argv;
}

TEST(ArgParserTest, DefaultsSurviveWhenUnset) {
  ArgParser parser("prog", "test");
  const auto* k = parser.AddInt("k", 8, "budget");
  const auto* lambda = parser.AddDouble("lambda", 0.5, "ratio");
  const auto* verbose = parser.AddBool("verbose", false, "chatty");
  const auto* name = parser.AddString("name", "tree", "topology");
  auto argv = Argv({});
  parser.Parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(*k, 8);
  EXPECT_DOUBLE_EQ(*lambda, 0.5);
  EXPECT_FALSE(*verbose);
  EXPECT_EQ(*name, "tree");
}

TEST(ArgParserTest, EqualsSyntax) {
  ArgParser parser("prog", "test");
  const auto* k = parser.AddInt("k", 0, "budget");
  const auto* lambda = parser.AddDouble("lambda", 0.0, "ratio");
  auto argv = Argv({"--k=12", "--lambda=0.25"});
  parser.Parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(*k, 12);
  EXPECT_DOUBLE_EQ(*lambda, 0.25);
}

TEST(ArgParserTest, SpaceSeparatedSyntax) {
  ArgParser parser("prog", "test");
  const auto* k = parser.AddInt("k", 0, "budget");
  auto argv = Argv({"--k", "7"});
  parser.Parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(*k, 7);
}

TEST(ArgParserTest, BareBoolFlagSetsTrue) {
  ArgParser parser("prog", "test");
  const auto* verbose = parser.AddBool("verbose", false, "chatty");
  auto argv = Argv({"--verbose"});
  parser.Parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(*verbose);
}

TEST(ArgParserTest, ExplicitBoolValues) {
  ArgParser parser("prog", "test");
  const auto* a = parser.AddBool("a", false, "x");
  const auto* b = parser.AddBool("b", true, "x");
  auto argv = Argv({"--a=true", "--b=false"});
  parser.Parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(*a);
  EXPECT_FALSE(*b);
}

TEST(ArgParserTest, PositionalArgumentsCollected) {
  ArgParser parser("prog", "test");
  parser.AddInt("k", 0, "budget");
  auto argv = Argv({"alpha", "--k=3", "beta"});
  parser.Parse(static_cast<int>(argv.size()), argv.data());
  ASSERT_EQ(parser.positional().size(), 2u);
  EXPECT_EQ(parser.positional()[0], "alpha");
  EXPECT_EQ(parser.positional()[1], "beta");
}

TEST(ArgParserTest, NegativeNumbersParse) {
  ArgParser parser("prog", "test");
  const auto* k = parser.AddInt("k", 0, "budget");
  const auto* x = parser.AddDouble("x", 0.0, "value");
  auto argv = Argv({"--k=-5", "--x=-2.5"});
  parser.Parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(*k, -5);
  EXPECT_DOUBLE_EQ(*x, -2.5);
}

TEST(ArgParserTest, UsageListsFlags) {
  ArgParser parser("prog", "my description");
  parser.AddInt("k", 8, "the budget");
  const std::string usage = parser.Usage();
  EXPECT_NE(usage.find("my description"), std::string::npos);
  EXPECT_NE(usage.find("--k"), std::string::npos);
  EXPECT_NE(usage.find("the budget"), std::string::npos);
  EXPECT_NE(usage.find("default: 8"), std::string::npos);
}

TEST(ArgParserDeathTest, UnknownFlagExits) {
  ArgParser parser("prog", "test");
  auto argv = Argv({"--nonexistent=1"});
  EXPECT_EXIT(parser.Parse(static_cast<int>(argv.size()), argv.data()),
              testing::ExitedWithCode(2), "unknown flag");
}

TEST(ArgParserDeathTest, MalformedValueExits) {
  ArgParser parser("prog", "test");
  parser.AddInt("k", 0, "budget");
  auto argv = Argv({"--k=abc"});
  EXPECT_EXIT(parser.Parse(static_cast<int>(argv.size()), argv.data()),
              testing::ExitedWithCode(2), "could not parse");
}

TEST(ArgParserDeathTest, MissingValueExits) {
  ArgParser parser("prog", "test");
  parser.AddInt("k", 0, "budget");
  auto argv = Argv({"--k"});
  EXPECT_EXIT(parser.Parse(static_cast<int>(argv.size()), argv.data()),
              testing::ExitedWithCode(2), "expects a value");
}

}  // namespace
}  // namespace tdmd
