// fleet-report builder (DESIGN.md Section 15): per-batch causal
// reconstruction from hand-written Chrome traces — connected chains,
// straggler and dominant-stage attribution, shed/recovery counting — and
// a malformed-trace corpus that must fail with one-line diagnostics
// instead of reporting zeros.  The end-to-end check against a real
// 4-shard traced run lives in fleet_trace_e2e_test.cpp.
#include "obs/fleet_report.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

namespace tdmd::obs {
namespace {

FleetReport Build(const std::string& text) {
  std::istringstream is(text);
  return BuildFleetReport(is);
}

/// A complete-event line in the writer's no-spaces JSON dialect.
std::string Span(const std::string& name, double tid, double ts, double dur,
                 std::uint64_t arg, std::uint64_t batch = 0) {
  std::ostringstream os;
  os << R"({"name":")" << name << R"(","ph":"X","pid":1,"tid":)" << tid
     << R"(,"ts":)" << ts << R"(,"dur":)" << dur << R"(,"args":{"arg":)"
     << arg;
  if (batch != 0) os << R"(,"batch":)" << batch;
  os << "}}";
  return os.str();
}

std::string Instant(const std::string& name, double tid, double ts,
                    std::uint64_t arg, std::uint64_t batch = 0) {
  std::ostringstream os;
  os << R"({"name":")" << name << R"(","ph":"i","s":"t","pid":1,"tid":)"
     << tid << R"(,"ts":)" << ts << R"(,"args":{"arg":)" << arg;
  if (batch != 0) os << R"(,"batch":)" << batch;
  os << "}}";
  return os.str();
}

std::string Trace(std::initializer_list<std::string> events) {
  std::string text = R"({"traceEvents":[)";
  bool first = true;
  for (const std::string& event : events) {
    if (!first) text += ",\n";
    first = false;
    text += event;
  }
  text += "]}";
  return text;
}

/// One fully connected batch: submit on the coordinator thread (tid 0),
/// dwell + patch + adoption on worker `tid`, shard id in the dwell arg.
/// Timestamps: submit at `t0`, dequeue at t0+10, patch ends t0+30,
/// adoption at t0+40.
std::string ConnectedBatch(std::uint64_t batch, double tid,
                           std::uint64_t shard, double t0) {
  return Span("fleet-submit", 0, t0, 50, 1, batch) + ",\n" +
         Span("queue-dwell", tid, t0, 10, shard, batch) + ",\n" +
         Span("patch", tid, t0 + 10, 20, 0, batch) + ",\n" +
         Instant("batch-adopted", tid, t0 + 40, 1, batch);
}

struct CorpusCase {
  const char* label;
  const char* text;
  const char* diagnostic;  // substring the error must contain
};

TEST(FleetReportTest, MalformedInputsAreRejectedWithDiagnostics) {
  const CorpusCase corpus[] = {
      {"empty file", "", "traceEvents"},
      {"garbage", "complete garbage \x01\x02 not json", "traceEvents"},
      {"wrong value type", R"({"traceEvents": {}})", "array"},
      {"truncated event",
       R"({"traceEvents": [{"name": "epoch", "ph": "X", "ts": 1)",
       "malformed"},
      {"missing fields", R"({"traceEvents": [{"ph": "i", "ts": 3}]})",
       "missing name/ph/ts"},
      {"span without dur",
       R"({"traceEvents": [{"name": "epoch", "ph": "X", "ts": 1}]})",
       "dur"},
      {"no events", R"({"traceEvents": []})", "no events"},
  };
  for (const CorpusCase& c : corpus) {
    const FleetReport report = Build(c.text);
    EXPECT_FALSE(report.ok) << c.label;
    EXPECT_NE(report.error.find(c.diagnostic), std::string::npos)
        << c.label << ": " << report.error;
    EXPECT_EQ(report.batches, 0u) << c.label;
  }
}

TEST(FleetReportTest, SingleEngineTraceIsRejectedNotZeroed) {
  // Structurally valid, but no fleet-submit span anywhere: a
  // single-engine trace must be pointed at trace-report, not summarized
  // as "0 batches".
  const FleetReport report =
      Build(Trace({Span("epoch", 0, 1, 5, 1), Instant("adoption", 0, 9, 2)}));
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.error.find("no fleet-submit spans"), std::string::npos);
  EXPECT_NE(report.error.find("trace-report"), std::string::npos);
}

TEST(FleetReportTest, ReconstructsConnectedChainsWithAttribution) {
  // Batch 1 touches shards 0 (tid 1) and 2 (tid 3); shard 2 adopts last
  // so it is the straggler.  Batch 2 touches only shard 0.
  const std::string text = Trace({
      Span("fleet-submit", 0, 100, 60, 2, 1),
      Span("queue-dwell", 1, 100, 10, 0, 1),
      Span("patch", 1, 110, 20, 0, 1),
      Instant("batch-adopted", 1, 140, 1, 1),
      Span("queue-dwell", 3, 100, 30, 2, 1),
      Span("patch", 3, 130, 40, 0, 1),
      Instant("batch-adopted", 3, 180, 1, 1),
      ConnectedBatch(2, 1, 0, 200),
  });
  const FleetReport report = Build(text);
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_EQ(report.batches, 2u);
  EXPECT_EQ(report.connected, 2u);
  EXPECT_TRUE(report.disconnected_ids.empty());

  // Batch 1 critical path runs through shard 2: e2e 80us; batch 2: 40us.
  EXPECT_DOUBLE_EQ(report.e2e_p50_us, 40.0);
  EXPECT_DOUBLE_EQ(report.e2e_p99_us, 80.0);
  EXPECT_DOUBLE_EQ(report.e2e_max_us, 80.0);

  // Shard table: shard 0 carried both batches but stragglered only batch
  // 2; shard 2 stragglered batch 1.
  ASSERT_EQ(report.shards.size(), 2u);
  EXPECT_EQ(report.shards[0].shard, 0u);
  EXPECT_EQ(report.shards[0].batches, 2u);
  EXPECT_EQ(report.shards[0].stragglers, 1u);
  EXPECT_EQ(report.shards[1].shard, 2u);
  EXPECT_EQ(report.shards[1].batches, 1u);
  EXPECT_EQ(report.shards[1].stragglers, 1u);

  // Batch 1 straggler legs: submit->dequeue 30, dequeue->patch 40,
  // patch->adopt 10.  Batch 2: 10 / 20 / 10.
  EXPECT_EQ(report.dominant_dequeue_patch, 2u);
  EXPECT_EQ(report.dominant_submit_dequeue, 0u);
  EXPECT_EQ(report.dominant_patch_adopt, 0u);

  std::ostringstream table;
  WriteFleetReport(table, report);
  const std::string rendered = table.str();
  EXPECT_NE(rendered.find("2 batches (2 connected, 100.0%)"),
            std::string::npos);
  EXPECT_NE(rendered.find("dominant stage: submit->dequeue 0, "
                          "dequeue->patch 2, patch->adopt 0"),
            std::string::npos);
  EXPECT_NE(rendered.find("shard "), std::string::npos);
}

TEST(FleetReportTest, DanglingDwellMarksBatchDisconnected) {
  // Batch 1 is complete; batch 2's worker dequeued but never adopted
  // (lost to a crash or truncated capture).
  const std::string text = Trace({
      ConnectedBatch(1, 1, 0, 100),
      Span("fleet-submit", 0, 200, 50, 1, 2),
      Span("queue-dwell", 1, 200, 10, 0, 2),
  });
  const FleetReport report = Build(text);
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_EQ(report.batches, 2u);
  EXPECT_EQ(report.connected, 1u);
  ASSERT_EQ(report.disconnected_ids.size(), 1u);
  EXPECT_EQ(report.disconnected_ids[0], 2u);

  std::ostringstream table;
  WriteFleetReport(table, report);
  EXPECT_NE(table.str().find("disconnected batch ids: 2"),
            std::string::npos);
}

TEST(FleetReportTest, SubmitWithoutAnyWorkerIsDisconnected) {
  // A fleet-submit span with no downstream events (all commands shed or
  // the capture cut off) must not count as connected.
  const FleetReport report =
      Build(Trace({Span("fleet-submit", 0, 10, 5, 0, 1)}));
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_EQ(report.batches, 1u);
  EXPECT_EQ(report.connected, 0u);
}

TEST(FleetReportTest, CountsShedAndRecoveryInstants) {
  const std::string text = Trace({
      ConnectedBatch(1, 1, 0, 100),
      Instant("shed-batch", 0, 150, 1, 1),
      Instant("shed-batch", 0, 160, 0, 1),
      Instant("shard-recovery", 0, 170, 1),
  });
  const FleetReport report = Build(text);
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_EQ(report.shed_batches, 2u);
  EXPECT_EQ(report.recoveries, 1u);

  std::ostringstream table;
  WriteFleetReport(table, report);
  EXPECT_NE(table.str().find("2 shed, 1 recoveries"), std::string::npos);
}

TEST(FleetReportTest, FlowRecordsDoNotPolluteChains) {
  // Interleave writer-style flow records ("name":"batch", string-free of
  // args.batch) with the bound events; they must be counted as events
  // but never create or corrupt a chain.
  const std::string flow_start =
      R"({"name":"batch","cat":"batch","ph":"s","id":1,"pid":1,"tid":0,"ts":101})";
  const std::string flow_finish =
      R"({"name":"batch","cat":"batch","ph":"f","id":1,"pid":1,"tid":1,"ts":140,"bp":"e"})";
  const FleetReport report = Build(
      Trace({ConnectedBatch(1, 1, 0, 100), flow_start, flow_finish}));
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_EQ(report.num_events, 6u);  // 4 bound events + 2 flow records
  EXPECT_EQ(report.batches, 1u);
  EXPECT_EQ(report.connected, 1u);
}

TEST(FleetReportTest, QueueDwellShareReflectsStragglerDwell) {
  // One batch, dwell 10 of e2e 40 -> share 25%.
  const FleetReport report = Build(Trace({ConnectedBatch(1, 1, 0, 0)}));
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_DOUBLE_EQ(report.dwell_share, 0.25);
}

}  // namespace
}  // namespace tdmd::obs
