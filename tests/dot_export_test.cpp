#include "io/dot_export.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "test_util.hpp"

namespace tdmd::io {
namespace {

TEST(DotExportTest, ContainsEveryVertexAndArc) {
  core::Instance instance = test::PaperInstance();
  core::Deployment plan(instance.num_vertices(), {test::kV2, test::kV6});
  std::ostringstream oss;
  WriteDot(oss, instance, plan);
  const std::string dot = oss.str();
  EXPECT_NE(dot.find("digraph tdmd {"), std::string::npos);
  for (VertexId v = 0; v < instance.num_vertices(); ++v) {
    std::ostringstream label;
    label << 'v' << v << " [";
    EXPECT_NE(dot.find(label.str()), std::string::npos) << "vertex " << v;
  }
  // Tree arc: paper's v7 -> v6 is 0-based v6 -> v5.
  EXPECT_NE(dot.find("v6 -> v5"), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
}

TEST(DotExportTest, MiddleboxesRenderAsFilledBoxes) {
  core::Instance instance = test::PaperInstance();
  core::Deployment plan(instance.num_vertices(), {test::kV6});
  std::ostringstream oss;
  WriteDot(oss, instance, plan);
  const std::string dot = oss.str();
  // v5 is the paper's v6 (0-based), the deployed box.
  EXPECT_NE(dot.find("v5 [label=\"v5\", shape=box"), std::string::npos);
  // The root is the shared destination.
  EXPECT_NE(dot.find("v0 [label=\"v0\", shape=doublecircle"),
            std::string::npos);
  // Leaves are flow sources.
  EXPECT_NE(dot.find("v3 [label=\"v3\", shape=diamond"),
            std::string::npos);
}

TEST(DotExportTest, EdgeLoadLabelsMatchSimulation) {
  core::Instance instance = test::PaperInstance();
  core::Deployment plan(instance.num_vertices(), {test::kV6});
  std::ostringstream oss;
  WriteDot(oss, instance, plan);
  // Arc v6(paper) -> v3(paper) = v5 -> v2 carries 2.5 + 0.5 = 3.
  EXPECT_NE(oss.str().find("v5 -> v2 [label=\"3\""), std::string::npos);
}

TEST(DotExportTest, HideIdleEdgesWithSpamFilter) {
  const graph::Tree tree = test::PaperTree();
  core::Instance instance =
      core::MakeTreeInstance(tree, test::PaperFlows(tree), 0.0);
  core::Deployment plan(instance.num_vertices(), {test::kV6});
  DotOptions options;
  options.hide_idle_edges = true;
  std::ostringstream oss;
  WriteDot(oss, instance, plan, options);
  // Downstream of a spam filter the link is idle and must disappear.
  EXPECT_EQ(oss.str().find("v5 -> v2"), std::string::npos);
  // Upstream still shown.
  EXPECT_NE(oss.str().find("v6 -> v5"), std::string::npos);
}

TEST(DotExportTest, NoLoadLabelsWhenDisabled) {
  core::Instance instance = test::PaperInstance();
  core::Deployment plan(instance.num_vertices(), {test::kV1});
  DotOptions options;
  options.edge_loads = false;
  std::ostringstream oss;
  WriteDot(oss, instance, plan, options);
  EXPECT_EQ(oss.str().find("label=\"", oss.str().find("->")),
            std::string::npos);
}

}  // namespace
}  // namespace tdmd::io
