// io::AtomicFileWriter and the CRC trailer (DESIGN.md Section 14.1):
// checksummed, atomically-renamed file writes, verified reads that
// reject torn or corrupted files, and the injected crash-point that
// proves a failure mid-write never touches the destination.
#include "io/atomic_file.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "faults/faults.hpp"

namespace tdmd::io {
namespace {

std::string TempPath(const std::string& name) {
  // Pid-qualified so parallel ctest processes never share a scratch file.
  return ::testing::TempDir() + "/" + std::to_string(::getpid()) + "_" +
         name;
}

std::string Slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

bool Exists(const std::string& path) {
  std::ifstream is(path);
  return is.good();
}

TEST(Crc32Test, KnownAnswer) {
  // The standard CRC-32 check value: crc32("123456789") = 0xCBF43926.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0x00000000u);
}

TEST(AtomicFileTest, WritesContentAndRemovesTemp) {
  const std::string path = TempPath("atomic_plain.txt");
  std::string error;
  ASSERT_TRUE(WriteFileAtomic(
      path, [](std::ostream& os) { os << "hello\nworld\n"; }, {}, &error))
      << error;
  EXPECT_EQ(Slurp(path), "hello\nworld\n");
  EXPECT_FALSE(Exists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(AtomicFileTest, CrcTrailerRoundTrip) {
  const std::string path = TempPath("atomic_crc.txt");
  AtomicWriteOptions options;
  options.crc_trailer = true;
  ASSERT_TRUE(WriteFileAtomic(
      path, [](std::ostream& os) { os << "payload line\n"; }, options));

  const VerifiedPayload verified = ReadFileVerified(path);
  ASSERT_TRUE(verified.ok()) << verified.error;
  EXPECT_EQ(verified.payload, "payload line\n");
  std::remove(path.c_str());
}

TEST(AtomicFileTest, TruncationAlwaysRejected) {
  const std::string path = TempPath("atomic_trunc.txt");
  AtomicWriteOptions options;
  options.crc_trailer = true;
  ASSERT_TRUE(WriteFileAtomic(
      path,
      [](std::ostream& os) { os << "line one\nline two\nline three\n"; },
      options));
  const std::string full = Slurp(path);

  // Every proper prefix must fail verification: a shorter file either
  // loses the trailer entirely or breaks the declared byte count.
  for (std::size_t len = 0; len < full.size(); ++len) {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(full.data(), static_cast<std::streamsize>(len));
    os.close();
    const VerifiedPayload verified = ReadFileVerified(path);
    EXPECT_FALSE(verified.ok()) << "prefix of " << len << " bytes passed";
  }
  std::remove(path.c_str());
}

TEST(AtomicFileTest, BitFlipAlwaysRejected) {
  const std::string path = TempPath("atomic_flip.txt");
  AtomicWriteOptions options;
  options.crc_trailer = true;
  ASSERT_TRUE(WriteFileAtomic(
      path, [](std::ostream& os) { os << "stable payload bytes\n"; },
      options));
  const std::string full = Slurp(path);

  for (std::size_t i = 0; i < full.size(); ++i) {
    std::string corrupt = full;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x01);
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << corrupt;
    os.close();
    const VerifiedPayload verified = ReadFileVerified(path);
    EXPECT_FALSE(verified.ok()) << "bit flip at byte " << i << " passed";
  }
  std::remove(path.c_str());
}

TEST(AtomicFileTest, MissingTrailerRejected) {
  const std::string path = TempPath("atomic_notrailer.txt");
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os << "just a payload, no trailer\n";
  os.close();
  const VerifiedPayload verified = ReadFileVerified(path);
  EXPECT_FALSE(verified.ok());
  std::remove(path.c_str());
}

TEST(AtomicFileTest, InjectedCrashLeavesDestinationUntouched) {
  const std::string path = TempPath("atomic_crash.txt");
  AtomicWriteOptions options;
  options.crc_trailer = true;
  ASSERT_TRUE(WriteFileAtomic(
      path, [](std::ostream& os) { os << "good checkpoint\n"; }, options));
  const std::string before = Slurp(path);

  // A crash between opening the temp file and the rename (the
  // checkpoint-write fault site) must leave the destination byte-
  // identical and verifiable; only a torn .tmp may remain.
  faults::FaultSpec spec;
  spec.seed = 7;
  spec.at(faults::FaultSite::kCheckpointWrite).throw_probability = 1.0;
  faults::FaultInjector injector(spec);
  options.fault_injector = &injector;
  std::string error;
  EXPECT_FALSE(WriteFileAtomic(
      path, [](std::ostream& os) { os << "newer checkpoint\n"; }, options,
      &error));
  EXPECT_FALSE(error.empty());

  EXPECT_EQ(Slurp(path), before);
  EXPECT_TRUE(ReadFileVerified(path).ok());
  std::remove((path + ".tmp").c_str());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tdmd::io
