// Regression coverage for the Metrics() torn-view fix: counters, the
// latency histograms and the quality timeline used to be captured under
// three separate state_mu_ acquisitions (stats(), histograms(),
// QualityTimeline()), so an epoch landing between them produced an
// exposition where tdmd_engine_epochs disagreed with the per-epoch
// histogram counts.  Metrics() now captures all three under one lock
// acquisition, making the cross-metric invariants below hold within
// every single exposition, even one raced against live churn.
#include "engine/engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/churn_trace.hpp"
#include "obs/metrics.hpp"
#include "topology/generators.hpp"

namespace tdmd::engine {
namespace {

// Extracts the value of a `name value` Prometheus sample line.
std::uint64_t PrometheusValue(const std::string& exposition,
                              const std::string& name) {
  std::istringstream is(exposition);
  std::string line;
  while (std::getline(is, line)) {
    if (line.rfind(name + " ", 0) == 0) {
      return std::stoull(line.substr(name.size() + 1));
    }
  }
  ADD_FAILURE() << "sample not found: " << name;
  return 0;
}

// One SubmitBatch records exactly one patch sample and one index-delta
// sample, so within a single exposition both histogram counts must equal
// the epoch counter — regardless of how many epochs complete while the
// exposition is being taken.
void ExpectCoherent(const std::string& exposition) {
  const std::uint64_t epochs =
      PrometheusValue(exposition, "tdmd_engine_epochs");
  EXPECT_EQ(PrometheusValue(exposition,
                            "tdmd_engine_patch_latency_seconds_count"),
            epochs)
      << exposition;
  EXPECT_EQ(PrometheusValue(exposition,
                            "tdmd_engine_index_delta_cost_seconds_count"),
            epochs)
      << exposition;
}

TEST(EngineMetricsConsistency, SingleExpositionInvariantsUnderChurn) {
  Rng rng(2024);
  const graph::Digraph network = topology::Waxman(16, 0.5, 0.4, rng);
  core::ChurnModel churn;
  churn.arrival_count = 8;
  churn.departure_probability = 0.3;

  EngineOptions options;
  options.k = 4;
  options.synchronous = false;
  options.solver_threads = 2;
  Engine eng(network, options);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> expositions{0};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      std::ostringstream os;
      eng.DumpMetrics(os, obs::MetricsFormat::kPrometheus);
      ExpectCoherent(os.str());
      expositions.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::yield();
    }
  });

  Rng trace_rng(2025);
  const ChurnTrace trace = BuildChurnTrace(network, churn, 24, 0, trace_rng);
  std::vector<FlowTicket> active;
  for (const ChurnEpoch& epoch : trace.epochs) {
    std::vector<FlowTicket> departing;
    for (std::size_t position : epoch.departures) {
      departing.push_back(active[position]);
    }
    for (auto it = epoch.departures.rbegin(); it != epoch.departures.rend();
         ++it) {
      active.erase(active.begin() + static_cast<std::ptrdiff_t>(*it));
    }
    const auto result = eng.SubmitBatch(epoch.arrivals, departing);
    active.insert(active.end(), result.tickets.begin(),
                  result.tickets.end());
  }
  eng.WaitIdle();
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_GT(expositions.load(std::memory_order_relaxed), 0u);

  // Quiesced: the invariants hold and the epoch counter is exact.
  std::ostringstream os;
  eng.DumpMetrics(os, obs::MetricsFormat::kPrometheus);
  ExpectCoherent(os.str());
  EXPECT_EQ(PrometheusValue(os.str(), "tdmd_engine_epochs"),
            trace.epochs.size());
}

}  // namespace
}  // namespace tdmd::engine
