#include "core/objective.hpp"

#include <gtest/gtest.h>

#include "core/brute_force.hpp"
#include "test_util.hpp"

namespace tdmd::core {
namespace {

TEST(FlowBandwidthTest, ServedAtSourceDiminishesEverything) {
  Instance instance = test::PaperInstance();
  // f3: rate 5, 3 edges, lambda 0.5; served at source: 0.5 * 5 * 3 = 7.5.
  EXPECT_DOUBLE_EQ(FlowBandwidth(instance, 2, 0), 7.5);
}

TEST(FlowBandwidthTest, ServedAtDestinationDiminishesNothing) {
  Instance instance = test::PaperInstance();
  EXPECT_DOUBLE_EQ(FlowBandwidth(instance, 2, 3), 15.0);
}

TEST(FlowBandwidthTest, UnservedPaysFullRate) {
  Instance instance = test::PaperInstance();
  EXPECT_DOUBLE_EQ(FlowBandwidth(instance, 2, kUnservedIndex), 15.0);
  EXPECT_DOUBLE_EQ(FlowBandwidth(instance, 0, kUnservedIndex), 4.0);
}

TEST(FlowBandwidthTest, MidPathServing) {
  Instance instance = test::PaperInstance();
  // f3 served at v6 (index 1): 1 full edge + 2 diminished:
  // 5 + 2.5 + 2.5 = 10.
  EXPECT_DOUBLE_EQ(FlowBandwidth(instance, 2, 1), 10.0);
}

TEST(EvaluateBandwidthTest, EmptyDeploymentIsUnprocessed) {
  Instance instance = test::PaperInstance();
  Deployment empty(instance.num_vertices());
  EXPECT_DOUBLE_EQ(EvaluateBandwidth(instance, empty), 24.0);
  EXPECT_DOUBLE_EQ(EvaluateDecrement(instance, empty), 0.0);
}

TEST(EvaluateBandwidthTest, AllLeavesIsTheMinimum) {
  // Lemma 1(2): serving every flow at its source reaches
  // lambda * sum r|p|.
  Instance instance = test::PaperInstance();
  Deployment leaves(instance.num_vertices(),
                    {test::kV4, test::kV5, test::kV7, test::kV8});
  EXPECT_DOUBLE_EQ(EvaluateBandwidth(instance, leaves), 12.0);
  EXPECT_DOUBLE_EQ(EvaluateDecrement(instance, leaves), 12.0);
}

TEST(EvaluateBandwidthTest, FullDeploymentEqualsLeafDeployment) {
  // Lemma 1(1): d(V) = (1 - lambda) sum r|p| — every flow served at its
  // source even when every vertex hosts a middlebox.
  Instance instance = test::PaperInstance();
  std::vector<VertexId> all;
  for (VertexId v = 0; v < instance.num_vertices(); ++v) all.push_back(v);
  Deployment everything(instance.num_vertices(), all);
  EXPECT_DOUBLE_EQ(EvaluateDecrement(instance, everything), 12.0);
}

TEST(EvaluateBandwidthTest, PaperK2OptimalPlan) {
  // Fig. 6 / Section 5.1: {v2, v6} achieves F(v1, 2) = 16.5.
  Instance instance = test::PaperInstance();
  Deployment plan(instance.num_vertices(), {test::kV2, test::kV6});
  EXPECT_DOUBLE_EQ(EvaluateBandwidth(instance, plan), 16.5);
  Deployment alt(instance.num_vertices(), {test::kV1, test::kV7});
  EXPECT_DOUBLE_EQ(EvaluateBandwidth(instance, alt), 16.5);
}

TEST(EvaluateBandwidthTest, PaperK3OptimalPlan) {
  Instance instance = test::PaperInstance();
  Deployment plan(instance.num_vertices(),
                  {test::kV2, test::kV7, test::kV8});
  EXPECT_DOUBLE_EQ(EvaluateBandwidth(instance, plan), 13.5);
}

TEST(AllocateTest, NearestSourceWins) {
  Instance instance = test::PaperInstance();
  // Boxes on both v6 and v7: f3 must be served at v7 (nearer its source).
  Deployment plan(instance.num_vertices(), {test::kV6, test::kV7});
  Allocation allocation = Allocate(instance, plan);
  EXPECT_EQ(allocation.serving_vertex[2], test::kV7);
  // f2 (flow 3) sources at v8; its nearest box is v6.
  EXPECT_EQ(allocation.serving_vertex[3], test::kV6);
  // f1/f4 see no box on their paths.
  EXPECT_EQ(allocation.serving_vertex[0], kInvalidVertex);
  EXPECT_FALSE(allocation.AllServed());
}

TEST(FeasibilityTest, RootCoversEverythingOnTrees) {
  Instance instance = test::PaperInstance();
  Deployment root_only(instance.num_vertices(), {test::kV1});
  EXPECT_TRUE(IsFeasible(instance, root_only));
  Deployment partial(instance.num_vertices(), {test::kV2});
  EXPECT_FALSE(IsFeasible(instance, partial));
}

TEST(ServedStateTest, MarginalMatchesFullRecomputation) {
  Rng rng(5);
  Instance instance = test::MakeRandomGeneralCase(18, 0.3, 12, rng);
  ServedState state(instance);
  Deployment plan(instance.num_vertices());
  for (VertexId v : {2, 7, 11}) {
    // Marginal decrement must equal d(P u {v}) - d(P) computed from
    // scratch.
    Deployment with_v = plan;
    with_v.Add(v);
    const Bandwidth expected = EvaluateDecrement(instance, with_v) -
                               EvaluateDecrement(instance, plan);
    EXPECT_NEAR(state.MarginalDecrement(v), expected, 1e-9);
    state.Deploy(v);
    plan.Add(v);
    EXPECT_NEAR(state.bandwidth(), EvaluateBandwidth(instance, plan), 1e-9);
  }
}

TEST(ServedStateTest, DeployIsIdempotentOnWorsePositions) {
  Instance instance = test::PaperInstance();
  ServedState state(instance);
  state.Deploy(test::kV7);
  const Bandwidth after_leaf = state.bandwidth();
  state.Deploy(test::kV6);  // worse for f3, serves f2
  EXPECT_LT(state.bandwidth(), after_leaf);
  const Bandwidth after_v6 = state.bandwidth();
  state.Deploy(test::kV3);  // no flow improves: v7/v6 already better
  EXPECT_DOUBLE_EQ(state.bandwidth(), after_v6);
}

TEST(ServedStateTest, UnservedCountTracksCoverage) {
  Instance instance = test::PaperInstance();
  ServedState state(instance);
  EXPECT_EQ(state.unserved_count(), 4);
  state.Deploy(test::kV6);
  EXPECT_EQ(state.unserved_count(), 2);
  state.Deploy(test::kV2);
  EXPECT_EQ(state.unserved_count(), 0);
  EXPECT_TRUE(state.AllServed());
}

class SubmodularityProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SubmodularityProperty, DecrementIsMonotoneAndSubmodular) {
  // Theorem 2: for P subset P', d_P({v}) >= d_P'({v}), and d is monotone.
  Rng rng(GetParam());
  const double lambda = rng.NextDouble(0.0, 1.0);
  Instance instance = test::MakeRandomGeneralCase(16, lambda, 10, rng);

  // Build nested P subset P'.
  std::vector<VertexId> all;
  for (VertexId v = 0; v < instance.num_vertices(); ++v) all.push_back(v);
  rng.Shuffle(all);
  Deployment small(instance.num_vertices());
  Deployment large(instance.num_vertices());
  for (std::size_t i = 0; i < 3; ++i) {
    small.Add(all[i]);
    large.Add(all[i]);
  }
  for (std::size_t i = 3; i < 6; ++i) large.Add(all[i]);

  EXPECT_GE(EvaluateDecrement(instance, large) + 1e-9,
            EvaluateDecrement(instance, small));  // monotone

  for (std::size_t i = 6; i < all.size(); ++i) {
    const VertexId v = all[i];
    Deployment small_v = small;
    small_v.Add(v);
    Deployment large_v = large;
    large_v.Add(v);
    const Bandwidth gain_small = EvaluateDecrement(instance, small_v) -
                                 EvaluateDecrement(instance, small);
    const Bandwidth gain_large = EvaluateDecrement(instance, large_v) -
                                 EvaluateDecrement(instance, large);
    EXPECT_GE(gain_small + 1e-9, gain_large)
        << "submodularity violated at v=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SubmodularityProperty,
                         ::testing::Range<std::uint64_t>(1, 26));

}  // namespace
}  // namespace tdmd::core
