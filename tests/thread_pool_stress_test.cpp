// Contention-focused stress tests for parallel::ThreadPool.
//
// These exist primarily for the tsan preset: each scenario drives the
// queue/condition-variable protocol through the interleavings where a
// data race or missed notification would hide — many concurrent
// producers, tasks that throw, destruction with a loaded queue, Wait()
// racing Submit(), and worker-side resubmission.  Assertions double as
// liveness checks: a lost wakeup turns into a test timeout.
#include "parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

namespace tdmd::parallel {
namespace {

TEST(ThreadPoolStressTest, ManyProducersManyTasks) {
  ThreadPool pool(4);
  constexpr int kProducers = 8;
  constexpr int kTasksPerProducer = 250;
  std::atomic<int> executed{0};

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  std::vector<std::vector<std::future<int>>> futures(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&pool, &executed, &futures, p]() {
      futures[p].reserve(kTasksPerProducer);
      for (int t = 0; t < kTasksPerProducer; ++t) {
        futures[p].push_back(pool.Submit([&executed, p, t]() {
          executed.fetch_add(1, std::memory_order_relaxed);
          return p * kTasksPerProducer + t;
        }));
      }
    });
  }
  for (std::thread& producer : producers) producer.join();

  int sum = 0;
  for (auto& per_producer : futures) {
    for (auto& future : per_producer) sum += future.get();
  }
  const int total = kProducers * kTasksPerProducer;
  EXPECT_EQ(executed.load(), total);
  EXPECT_EQ(sum, total * (total - 1) / 2);
}

TEST(ThreadPoolStressTest, ExceptionsInTasksReachFuturesAndPoolSurvives) {
  ThreadPool pool(3);
  constexpr int kTasks = 120;
  std::vector<std::future<int>> futures;
  futures.reserve(kTasks);
  for (int t = 0; t < kTasks; ++t) {
    futures.push_back(pool.Submit([t]() -> int {
      if (t % 3 == 0) throw std::runtime_error("task failed");
      return t;
    }));
  }
  int failures = 0;
  for (int t = 0; t < kTasks; ++t) {
    try {
      EXPECT_EQ(futures[static_cast<std::size_t>(t)].get(), t);
    } catch (const std::runtime_error&) {
      ++failures;
    }
  }
  EXPECT_EQ(failures, (kTasks + 2) / 3);

  // The workers must have survived every exception.
  EXPECT_EQ(pool.Submit([]() { return 41 + 1; }).get(), 42);
}

TEST(ThreadPoolStressTest, ShutdownWhileBusyDrainsQueuedTasks) {
  std::atomic<int> executed{0};
  constexpr int kTasks = 200;
  {
    ThreadPool pool(2);
    for (int t = 0; t < kTasks; ++t) {
      pool.Submit([&executed]() {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        executed.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // Destructor runs with most of the queue still pending; the contract
    // is drain-then-join, not drop.
  }
  EXPECT_EQ(executed.load(), kTasks);
}

TEST(ThreadPoolStressTest, WaitRacesSubmissions) {
  ThreadPool pool(4);
  std::atomic<int> executed{0};
  constexpr int kRounds = 50;
  constexpr int kTasksPerRound = 20;

  std::thread producer([&pool, &executed]() {
    for (int r = 0; r < kRounds; ++r) {
      for (int t = 0; t < kTasksPerRound; ++t) {
        pool.Submit([&executed]() {
          executed.fetch_add(1, std::memory_order_relaxed);
        });
      }
      std::this_thread::yield();
    }
  });
  // Wait() concurrently with the producer: it may observe any prefix of
  // the submissions but must never hang or miss its wakeup.
  for (int i = 0; i < 20; ++i) {
    pool.Wait();
    std::this_thread::yield();
  }
  producer.join();
  pool.Wait();
  EXPECT_EQ(executed.load(), kRounds * kTasksPerRound);
}

TEST(ThreadPoolStressTest, WorkersCanResubmit) {
  ThreadPool pool(3);
  std::atomic<int> executed{0};
  constexpr int kRoots = 40;
  constexpr int kChildrenPerRoot = 5;
  for (int r = 0; r < kRoots; ++r) {
    pool.Submit([&pool, &executed]() {
      for (int c = 0; c < kChildrenPerRoot; ++c) {
        pool.Submit([&executed]() {
          executed.fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }
  // The children are enqueued before their parent leaves the in-flight
  // count, so a single Wait() covers the whole tree.
  pool.Wait();
  EXPECT_EQ(executed.load(), kRoots * kChildrenPerRoot);
}

TEST(ThreadPoolStressTest, ParallelForFromCompetingThreads) {
  ThreadPool pool(4);
  constexpr std::size_t kRange = 2000;
  std::vector<std::atomic<int>> hits(kRange);
  for (auto& h : hits) h.store(0);

  std::vector<std::thread> drivers;
  drivers.reserve(3);
  for (int d = 0; d < 3; ++d) {
    drivers.emplace_back([&pool, &hits]() {
      ParallelFor(pool, 0, kRange, [&hits](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
      });
    });
  }
  for (std::thread& driver : drivers) driver.join();
  for (std::size_t i = 0; i < kRange; ++i) {
    ASSERT_EQ(hits[i].load(), 3) << "index " << i;
  }
}

}  // namespace
}  // namespace tdmd::parallel
