#include "engine/engine.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "analysis/audit.hpp"
#include "core/dynamic.hpp"
#include "core/gtp.hpp"
#include "engine/churn_trace.hpp"
#include "test_util.hpp"
#include "topology/generators.hpp"

namespace tdmd::engine {
namespace {

graph::Digraph TestNetwork(std::uint64_t seed, VertexId n = 24) {
  Rng rng(seed);
  return topology::Waxman(n, 0.5, 0.4, rng);
}

/// Drives `engine` through `trace`, translating the trace's positional
/// departures into tickets (the bookkeeping a real client would do).
/// Calls `on_epoch` after every batch.
template <typename OnEpoch>
void Replay(Engine& engine, const ChurnTrace& trace, OnEpoch&& on_epoch) {
  std::vector<FlowTicket> active;
  for (const ChurnEpoch& epoch : trace.epochs) {
    std::vector<FlowTicket> departing;
    for (std::size_t position : epoch.departures) {
      ASSERT_LT(position, active.size());
      departing.push_back(active[position]);
    }
    for (auto it = epoch.departures.rbegin(); it != epoch.departures.rend();
         ++it) {
      active.erase(active.begin() + static_cast<std::ptrdiff_t>(*it));
    }
    const Engine::BatchResult result =
        engine.SubmitBatch(epoch.arrivals, departing);
    active.insert(active.end(), result.tickets.begin(),
                  result.tickets.end());
    on_epoch(result);
  }
}

ChurnTrace MakeTrace(const graph::Digraph& network, std::size_t epochs,
                     std::uint64_t seed, std::size_t arrival_count = 8,
                     double departure_probability = 0.25) {
  core::ChurnModel churn;
  churn.arrival_count = arrival_count;
  churn.departure_probability = departure_probability;
  Rng rng(seed);
  return BuildChurnTrace(network, churn, epochs, 0, rng);
}

TEST(EngineTest, PublishesImmutableVersionedSnapshots) {
  EngineOptions options;
  options.k = 4;
  options.synchronous = true;
  Engine engine(TestNetwork(11), options);

  const auto initial = engine.CurrentSnapshot();
  ASSERT_NE(initial, nullptr);
  EXPECT_EQ(initial->version, 1u);
  EXPECT_EQ(initial->epoch, 0u);
  EXPECT_TRUE(initial->deployment.empty());
  EXPECT_TRUE(initial->feasible);  // no flows, trivially feasible
  EXPECT_DOUBLE_EQ(initial->bandwidth, 0.0);

  const ChurnTrace trace = MakeTrace(engine.index().network(), 6, 21);
  std::uint64_t last_version = initial->version;
  Replay(engine, trace, [&](const Engine::BatchResult&) {
    const auto snapshot = engine.CurrentSnapshot();
    EXPECT_GT(snapshot->version, last_version);  // strictly increasing
    last_version = snapshot->version;
  });

  // The snapshot captured before any churn is immutable: still version 1,
  // still the empty deployment, even though the engine moved on.
  EXPECT_EQ(initial->version, 1u);
  EXPECT_TRUE(initial->deployment.empty());
  EXPECT_GE(engine.stats().snapshots_published, trace.epochs.size() + 1);
}

TEST(EngineTest, SnapshotsStayFeasibleUnderChurn) {
  EngineOptions options;
  options.k = 6;
  options.synchronous = true;
  Engine engine(TestNetwork(12), options);

  const ChurnTrace trace = MakeTrace(engine.index().network(), 12, 22);
  Replay(engine, trace, [&](const Engine::BatchResult&) {
    const auto snapshot = engine.CurrentSnapshot();
    EXPECT_TRUE(snapshot->feasible);
    EXPECT_LE(snapshot->deployment.size(), options.k);
  });
  EXPECT_GT(engine.stats().index_delta_ops, 0u);
  EXPECT_EQ(engine.stats().epochs, trace.epochs.size());
}

TEST(EngineTest, HysteresisFreezesDeploymentAtHugeThreshold) {
  EngineOptions options;
  options.k = 6;
  options.synchronous = true;
  options.move_threshold = 1e9;  // no saving can ever justify a move
  Engine engine(TestNetwork(13), options);

  const ChurnTrace trace = MakeTrace(engine.index().network(), 10, 23);
  Replay(engine, trace, [](const Engine::BatchResult&) {});

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.adoptions, 0u);
  EXPECT_EQ(stats.middlebox_moves, 0u);
  // Feasibility is still maintained by the synchronous patch alone.
  EXPECT_TRUE(engine.CurrentSnapshot()->feasible);
}

TEST(EngineTest, ZeroThresholdTracksBatchGtpQuality) {
  EngineOptions options;
  options.k = 5;
  options.synchronous = true;
  options.move_threshold = 0.0;
  Engine engine(TestNetwork(14), options);

  const ChurnTrace trace = MakeTrace(engine.index().network(), 8, 24);
  Replay(engine, trace, [](const Engine::BatchResult&) {});

  // With zero hysteresis the engine adopts any feasible re-solve that is
  // at least as good, so the published plan can never be worse than the
  // from-scratch answer of its own solver class (feasibility-aware
  // budgeted GTP, the DynamicPlacer reference) on the same flow set.
  core::GtpOptions batch_options;
  batch_options.max_middleboxes = options.k;
  batch_options.feasibility_aware = true;
  const core::PlacementResult batch =
      Gtp(engine.index().BuildInstance(), batch_options);
  const auto snapshot = engine.CurrentSnapshot();
  EXPECT_TRUE(snapshot->feasible);
  EXPECT_LE(snapshot->bandwidth, batch.bandwidth + 1e-9);
  EXPECT_GT(engine.stats().adoptions, 0u);
}

TEST(EngineTest, AsyncPipelineDrainsAndBalancesCounters) {
  EngineOptions options;
  options.k = 5;
  options.synchronous = false;
  options.solver_threads = 2;
  Engine engine(TestNetwork(15), options);

  // Rapid-fire batches so newer epochs race in-flight re-solves; some get
  // cancelled mid-run, some complete against a stale epoch and are
  // discarded, some land and are adopted.
  const ChurnTrace trace = MakeTrace(engine.index().network(), 20, 25,
                                     /*arrival_count=*/12,
                                     /*departure_probability=*/0.3);
  Replay(engine, trace, [](const Engine::BatchResult&) {});
  engine.WaitIdle();

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.resolves_started, trace.epochs.size());
  // Every started re-solve is accounted for exactly once.
  EXPECT_EQ(stats.resolves_started,
            stats.resolves_completed + stats.resolves_cancelled);
  EXPECT_GT(stats.resolves_completed, 0u);  // at least the last one lands
  EXPECT_TRUE(engine.CurrentSnapshot()->feasible);

  // A snapshot held across WaitIdle stays self-consistent even if a
  // late-landing re-solve published newer versions.
  const auto final_snapshot = engine.CurrentSnapshot();
  EXPECT_LE(final_snapshot->deployment.size(), options.k);
}

TEST(EngineTest, DepartingEveryFlowReturnsToEmptyFeasibility) {
  EngineOptions options;
  options.k = 3;
  options.synchronous = true;
  Engine engine(TestNetwork(16), options);

  Rng rng(30);
  core::ChurnModel churn;
  churn.arrival_count = 10;
  const traffic::FlowSet arrivals =
      core::DrawArrivals(engine.index().network(), churn, rng);
  const Engine::BatchResult first = engine.SubmitBatch(arrivals, {});
  ASSERT_EQ(first.tickets.size(), arrivals.size());
  EXPECT_TRUE(engine.CurrentSnapshot()->feasible);

  engine.SubmitBatch({}, first.tickets);
  EXPECT_EQ(engine.index().active_flows(), 0u);
  EXPECT_TRUE(engine.CurrentSnapshot()->feasible);
  EXPECT_DOUBLE_EQ(engine.CurrentSnapshot()->bandwidth, 0.0);
  // Stale tickets are ignored, not fatal.
  const Engine::BatchResult third = engine.SubmitBatch({}, first.tickets);
  EXPECT_EQ(engine.stats().departures, arrivals.size());
  EXPECT_EQ(third.epoch, 3u);
}

// Departures are idempotent: a ticket departed twice — in a later batch
// or twice within one batch — is a counted no-op (stale_departures), and
// the engine's state is exactly what a single departure leaves behind.
TEST(EngineTest, DuplicateDeparturesAreCountedNoOps) {
  EngineOptions options;
  options.k = 4;
  options.synchronous = true;
  Engine engine(TestNetwork(18), options);

  Rng rng(31);
  core::ChurnModel churn;
  churn.arrival_count = 6;
  const traffic::FlowSet arrivals =
      core::DrawArrivals(engine.index().network(), churn, rng);
  const Engine::BatchResult first = engine.SubmitBatch(arrivals, {});
  ASSERT_EQ(first.tickets.size(), arrivals.size());

  // The same ticket twice within one batch: second occurrence is stale.
  const FlowTicket victim = first.tickets.front();
  engine.SubmitBatch({}, {victim, victim});
  EngineStats stats = engine.stats();
  EXPECT_EQ(stats.departures, 1u);
  EXPECT_EQ(stats.stale_departures, 1u);
  EXPECT_EQ(engine.index().active_flows(), arrivals.size() - 1);

  const Bandwidth bandwidth_after = engine.CurrentSnapshot()->bandwidth;
  // Departing it again in a later batch changes nothing but the counter.
  engine.SubmitBatch({}, {victim});
  stats = engine.stats();
  EXPECT_EQ(stats.departures, 1u);
  EXPECT_EQ(stats.stale_departures, 2u);
  EXPECT_EQ(engine.index().active_flows(), arrivals.size() - 1);
  EXPECT_EQ(engine.CurrentSnapshot()->bandwidth, bandwidth_after);
  EXPECT_TRUE(engine.CurrentSnapshot()->feasible);
  // A never-issued ticket is equally harmless.
  engine.SubmitBatch({}, {kInvalidTicket});
  EXPECT_EQ(engine.stats().stale_departures, 3u);
}

// The ISSUE's audit requirement, asserted explicitly (not just via the
// debug hooks): every snapshot the engine publishes during a 20-epoch
// churn run passes the src/analysis invariant audit against an
// independently rebuilt instance.
TEST(EngineAuditTest, EveryPublishedSnapshotPassesAudit) {
  EngineOptions options;
  options.k = 6;
  options.synchronous = true;
  Engine engine(TestNetwork(17), options);

  const ChurnTrace trace = MakeTrace(engine.index().network(), 20, 26);
  Replay(engine, trace, [&](const Engine::BatchResult&) {
    const auto snapshot = engine.CurrentSnapshot();
    const core::Instance instance = engine.index().BuildInstance();
    core::PlacementResult as_result;
    as_result.deployment = snapshot->deployment;
    as_result.allocation = core::Allocate(instance, snapshot->deployment);
    as_result.bandwidth = snapshot->bandwidth;
    as_result.feasible = snapshot->feasible;
    analysis::AuditOptions audit_options;
    audit_options.max_middleboxes = options.k;
    const analysis::AuditReport report =
        analysis::AuditPlacementResult(instance, as_result, audit_options);
    EXPECT_TRUE(report.ok()) << report.ToString();
  });
}

}  // namespace
}  // namespace tdmd::engine
