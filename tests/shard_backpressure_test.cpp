// Backpressure and load shedding under sustained overload (DESIGN.md
// Section 14.3), plus a multi-producer MpscQueue stress for the
// sanitizer lanes: bounded queues block then shed to deferred-re-solve
// admission, and shedding never loses or double-applies a command —
// every arrival is admitted exactly once, shed or not.
#include "shard/mpsc_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "engine/churn_trace.hpp"
#include "faults/faults.hpp"
#include "shard/sharded_engine.hpp"
#include "topology/generators.hpp"

namespace tdmd::shard {
namespace {

TEST(MpscQueueStressTest, ManyProducersOneConsumerLosesNothing) {
  // 4 producers x 5000 values against one consumer popping as fast as it
  // can.  Every pushed value must arrive exactly once; per-producer
  // subsequences must arrive in push order (the queue is FIFO per
  // producer).  Run under TSan this pins the push/pop release/acquire
  // edges; under ASan the node recycling.
  constexpr std::uint64_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 5000;
  MpscQueue<std::uint64_t> queue;
  std::atomic<std::uint64_t> started{0};

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::uint64_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, &started, p] {
      started.fetch_add(1, std::memory_order_relaxed);
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        queue.Push(p * kPerProducer + i);
      }
    });
  }

  std::vector<std::uint64_t> next_expected(kProducers, 0);
  std::uint64_t received = 0;
  while (received < kProducers * kPerProducer) {
    std::uint64_t value = 0;
    if (!queue.Pop(value)) {
      std::this_thread::yield();
      continue;
    }
    const std::uint64_t producer = value / kPerProducer;
    const std::uint64_t sequence = value % kPerProducer;
    ASSERT_LT(producer, kProducers);
    ASSERT_EQ(sequence, next_expected[producer])
        << "producer " << producer << " reordered";
    ++next_expected[producer];
    ++received;
  }
  for (std::thread& t : producers) t.join();

  EXPECT_TRUE(queue.Empty());
  EXPECT_TRUE(queue.ConsumerIdle());
  EXPECT_EQ(queue.ApproxSize(), 0u);
  for (std::uint64_t p = 0; p < kProducers; ++p) {
    EXPECT_EQ(next_expected[p], kPerProducer);
  }
}

graph::Digraph TestNetwork(std::uint64_t seed) {
  Rng rng(seed);
  return topology::Waxman(24, 0.5, 0.4, rng);
}

TEST(ShardBackpressureTest, OverloadShedsWithoutLosingFlows) {
  // Depth-1 queues, consumers fault-stalled on every batch, submits
  // pipelined with no drain barrier: a sustained producer-faster-than-
  // consumer regime.  The fleet must block at the high-water mark, shed
  // past the deadline, and still admit every arrival exactly once.
  const graph::Digraph g = TestNetwork(103);
  core::ChurnModel churn;
  churn.arrival_count = 5;
  churn.departure_probability = 0.25;
  const engine::ChurnTrace trace =
      engine::BuildChurnTrace(g, churn, 10, 0, 29);

  ShardedEngineOptions options;
  options.partition.num_shards = 2;
  options.total_budget = 4;
  options.engine.lambda = 0.5;
  options.realloc_interval_epochs = 0;
  options.pin_threads = false;
  options.supervise = true;
  options.queue_depth = 1;
  options.backpressure_deadline = std::chrono::milliseconds(1);
  options.inject_faults = true;
  options.fault_spec.seed = 31;
  faults::SiteSpec& drain =
      options.fault_spec.at(faults::FaultSite::kQueueDrain);
  drain.delay_probability = 1.0;
  drain.delay = std::chrono::milliseconds(4);
  // Aggressive alert so a few fully-shed epochs must raise it.
  options.shed_alert.slack = 0.0;
  options.shed_alert.threshold = 0.25;
  ShardedEngine fleet(g, options);

  std::vector<FlowId64> active;
  std::size_t submitted = 0;
  for (const engine::ChurnEpoch& epoch : trace.epochs) {
    std::vector<FlowId64> departures;
    departures.reserve(epoch.departures.size());
    for (const std::size_t index : epoch.departures) {
      departures.push_back(active[index]);
    }
    for (auto it = epoch.departures.rbegin();
         it != epoch.departures.rend(); ++it) {
      active.erase(active.begin() + static_cast<std::ptrdiff_t>(*it));
    }
    const ShardedEngine::BatchResult result =
        fleet.SubmitBatch(epoch.arrivals, departures);
    active.insert(active.end(), result.flow_ids.begin(),
                  result.flow_ids.end());
    submitted += epoch.arrivals.size() + departures.size();
  }
  fleet.Drain();

  const FleetStats& stats = fleet.stats();
  EXPECT_GE(stats.backpressure_waits, 1u);
  EXPECT_GE(stats.shed_batches, 1u);
  EXPECT_GE(stats.shed_events, 1u);
  EXPECT_LE(stats.shed_events, submitted);
  EXPECT_GE(fleet.shed_alert().raised_total(), 1u);
  EXPECT_EQ(stats.crashes_detected, 0u);  // stalled is not crashed

  // Exactly-once admission: shed batches defer the re-solve, never the
  // flows.  Every live id must be accounted for by exactly one shard.
  const FleetSnapshot snapshot = fleet.Snapshot();
  std::size_t fleet_flows = 0;
  for (const ShardStatus& status : snapshot.shards) {
    fleet_flows += status.active_flows;
    EXPECT_EQ(status.queue_occupancy, 0u);  // drained
  }
  EXPECT_EQ(fleet_flows, active.size());
  EXPECT_GT(snapshot.bandwidth, 0.0);

  // The shed flows really are live: departing every one of them must be
  // routable (a lost ticket would trip the owner-shard CHECK).
  const ShardedEngine::BatchResult none =
      fleet.SubmitBatch({}, active);
  EXPECT_TRUE(none.flow_ids.empty());
  fleet.Drain();
  const FleetSnapshot empty = fleet.Snapshot();
  std::size_t remaining = 0;
  for (const ShardStatus& status : empty.shards) {
    remaining += status.active_flows;
  }
  EXPECT_EQ(remaining, 0u);
}

TEST(ShardBackpressureTest, UnboundedQueuesNeverShed) {
  // queue_depth = 0 disables the whole overload posture even with the
  // same consumer stalls: nothing blocks, nothing sheds.
  const graph::Digraph g = TestNetwork(107);
  core::ChurnModel churn;
  churn.arrival_count = 4;
  churn.departure_probability = 0.0;
  const engine::ChurnTrace trace =
      engine::BuildChurnTrace(g, churn, 4, 0, 37);

  ShardedEngineOptions options;
  options.partition.num_shards = 2;
  options.total_budget = 4;
  options.engine.lambda = 0.5;
  options.realloc_interval_epochs = 0;
  options.pin_threads = false;
  options.supervise = true;
  options.inject_faults = true;
  options.fault_spec.seed = 41;
  faults::SiteSpec& drain =
      options.fault_spec.at(faults::FaultSite::kQueueDrain);
  drain.delay_probability = 1.0;
  drain.delay = std::chrono::milliseconds(2);
  ShardedEngine fleet(g, options);

  for (const engine::ChurnEpoch& epoch : trace.epochs) {
    fleet.SubmitBatch(epoch.arrivals, {});
  }
  fleet.Drain();
  EXPECT_EQ(fleet.stats().backpressure_waits, 0u);
  EXPECT_EQ(fleet.stats().shed_batches, 0u);
  EXPECT_EQ(fleet.stats().shed_events, 0u);
  EXPECT_EQ(fleet.shed_alert().raised_total(), 0u);
}

}  // namespace
}  // namespace tdmd::shard
