// Fleet supervision (DESIGN.md Section 14): a shard crashed mid-churn is
// quarantined, respawned from its recovery checkpoint and redo-replayed
// to the *exact* state of an uninterrupted run (deterministic-replay
// guarantee, checked byte-for-byte); stalls surface as SHARD_DEGRADED
// and clear; the supervisor checkpoint cadence bounds replay work.
//
// Detection timing note: a crash command only materializes when the
// worker dequeues it, which on a saturated (or single-core) host may not
// happen until the coordinator blocks in a Drain — so these tests assert
// convergence at quiesce points, never "detected within N epochs".
#include "shard/sharded_engine.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "checkpoint_compare.hpp"
#include "common/rng.hpp"
#include "engine/churn_trace.hpp"
#include "faults/faults.hpp"
#include "io/text_format.hpp"
#include "shard/fleet_io.hpp"
#include "topology/generators.hpp"

namespace tdmd::shard {
namespace {

graph::Digraph TestNetwork(std::uint64_t seed, VertexId n = 30) {
  Rng rng(seed);
  return topology::Waxman(n, 0.5, 0.4, rng);
}

engine::ChurnTrace MakeTrace(const graph::Digraph& g, std::size_t epochs,
                             std::uint64_t seed) {
  core::ChurnModel churn;
  churn.arrival_count = 6;
  churn.departure_probability = 0.3;
  return engine::BuildChurnTrace(g, churn, epochs, 0, seed);
}

/// One epoch of trace churn; does NOT drain (callers pick their own
/// quiesce points — that is what these tests are about).
void SubmitEpoch(ShardedEngine& fleet, const engine::ChurnTrace& trace,
                 std::size_t e, std::vector<FlowId64>& active) {
  const engine::ChurnEpoch& epoch = trace.epochs[e];
  std::vector<FlowId64> departures;
  departures.reserve(epoch.departures.size());
  for (const std::size_t index : epoch.departures) {
    departures.push_back(active[index]);
  }
  for (auto it = epoch.departures.rbegin(); it != epoch.departures.rend();
       ++it) {
    active.erase(active.begin() + static_cast<std::ptrdiff_t>(*it));
  }
  const ShardedEngine::BatchResult result =
      fleet.SubmitBatch(epoch.arrivals, departures);
  active.insert(active.end(), result.flow_ids.begin(),
                result.flow_ids.end());
}

ShardedEngineOptions SupervisedOptions(std::size_t shards,
                                       std::size_t budget) {
  ShardedEngineOptions options;
  options.partition.num_shards = shards;
  options.total_budget = budget;
  options.engine.lambda = 0.5;
  options.engine.move_threshold = 0.0;
  // Reallocation off so a crashed run and an uninterrupted run are
  // command-for-command comparable (recovery re-enters the reallocation
  // round only when reallocation is configured).
  options.realloc_interval_epochs = 0;
  options.pin_threads = false;
  options.supervise = true;
  return options;
}

using test::SerializeDeterministic;

/// Runs the whole trace through a supervised fleet, crashing
/// `crash_shard` just before 1-based epoch `crash_epoch` (0 = never),
/// and returns the deterministic serialization of the final state.
std::string RunWithCrash(const graph::Digraph& g,
                         const engine::ChurnTrace& trace,
                         const ShardedEngineOptions& options,
                         std::size_t crash_epoch, std::size_t crash_shard,
                         FleetStats* stats_out = nullptr) {
  ShardedEngine fleet(g, options);
  std::vector<FlowId64> active;
  for (std::size_t e = 0; e < trace.epochs.size(); ++e) {
    if (crash_epoch != 0 && e + 1 == crash_epoch) {
      fleet.CrashShard(crash_shard);
    }
    SubmitEpoch(fleet, trace, e, active);
  }
  const FleetCheckpoint cp = fleet.Checkpoint();  // drains + supervises
  EXPECT_EQ(fleet.fleet_state(), FleetState::kNormal);
  EXPECT_EQ(cp.flows.size(), active.size());
  if (stats_out != nullptr) *stats_out = fleet.stats();
  return SerializeDeterministic(cp);
}

TEST(ShardSupervisorTest, CrashMidChurnRecoversByteIdentical) {
  const graph::Digraph g = TestNetwork(91);
  const engine::ChurnTrace trace = MakeTrace(g, 10, 7);
  const ShardedEngineOptions options = SupervisedOptions(2, 6);

  const std::string uninterrupted =
      RunWithCrash(g, trace, options, 0, 0);

  FleetStats stats;
  const std::string crashed =
      RunWithCrash(g, trace, options, 5, 1, &stats);

  EXPECT_EQ(stats.crashes_detected, 1u);
  EXPECT_EQ(stats.recoveries_completed, 1u);
  EXPECT_GE(stats.redo_replayed, 1u);
  EXPECT_GE(stats.state_transitions, 2u);  // NORMAL->...->NORMAL
  EXPECT_EQ(crashed, uninterrupted);
}

TEST(ShardSupervisorTest, RecoveryConvergesAtEveryCrashEpoch) {
  const graph::Digraph g = TestNetwork(93);
  const engine::ChurnTrace trace = MakeTrace(g, 8, 11);
  const ShardedEngineOptions options = SupervisedOptions(3, 6);

  const std::string uninterrupted =
      RunWithCrash(g, trace, options, 0, 0);
  for (const std::size_t crash_epoch : {1u, 4u, 8u}) {
    FleetStats stats;
    const std::string crashed = RunWithCrash(
        g, trace, options, crash_epoch, crash_epoch % 3, &stats);
    EXPECT_EQ(stats.crashes_detected, 1u) << "epoch " << crash_epoch;
    EXPECT_EQ(stats.recoveries_completed, 1u) << "epoch " << crash_epoch;
    EXPECT_EQ(crashed, uninterrupted) << "crash at epoch " << crash_epoch;
  }
}

TEST(ShardSupervisorTest, RepeatedCrashesOfTheSameShardRecover) {
  const graph::Digraph g = TestNetwork(95);
  const engine::ChurnTrace trace = MakeTrace(g, 9, 13);
  const ShardedEngineOptions options = SupervisedOptions(2, 6);

  const std::string uninterrupted =
      RunWithCrash(g, trace, options, 0, 0);

  ShardedEngine fleet(g, options);
  std::vector<FlowId64> active;
  for (std::size_t e = 0; e < trace.epochs.size(); ++e) {
    if (e == 2 || e == 6) fleet.CrashShard(1);
    SubmitEpoch(fleet, trace, e, active);
    // Quiesce between the crashes so they are two distinct episodes
    // rather than one doubled poison command.  (Not Snapshot(): its
    // certificate-refresh round would advance quality trackers the
    // uninterrupted baseline never advances.)
    if (e == 3) {
      fleet.Drain();
      fleet.Supervise();
    }
  }
  const std::string crashed = SerializeDeterministic(fleet.Checkpoint());
  EXPECT_EQ(fleet.stats().crashes_detected, 2u);
  EXPECT_EQ(fleet.stats().recoveries_completed, 2u);
  EXPECT_EQ(crashed, uninterrupted);
}

TEST(ShardSupervisorTest, InjectedWorkerFaultRecoversLikeCrashShard) {
  const graph::Digraph g = TestNetwork(97);
  const engine::ChurnTrace trace = MakeTrace(g, 8, 17);
  const ShardedEngineOptions clean = SupervisedOptions(2, 6);
  const std::string uninterrupted =
      RunWithCrash(g, trace, clean, 0, 0);

  // Same trace under a real injected worker abort (the fault path that
  // CrashShard mimics): deterministic per-shard injector, low enough
  // probability that the run sees a handful of aborts, not a crash loop.
  ShardedEngineOptions faulty = clean;
  faulty.inject_faults = true;
  faulty.fault_spec.seed = 5;
  faulty.fault_spec.at(faults::FaultSite::kShardWorker).throw_probability =
      0.1;
  ShardedEngine fleet(g, faulty);
  std::vector<FlowId64> active;
  for (std::size_t e = 0; e < trace.epochs.size(); ++e) {
    SubmitEpoch(fleet, trace, e, active);
  }
  // The redo replay itself visits the worker fault site, so a recovery
  // attempt can re-crash (each attempt counts in crashes_detected and
  // stays quarantined).  Heartbeat until one attempt survives — the ring
  // is not consumed by failed replays, so every retry is complete.
  fleet.Drain();  // materialize any fault still queued
  fleet.Supervise();
  for (int tick = 0;
       tick < 200 && fleet.fleet_state() != FleetState::kNormal; ++tick) {
    fleet.Drain();
    fleet.Supervise();
  }
  const FleetCheckpoint cp = fleet.Checkpoint();
  EXPECT_EQ(fleet.fleet_state(), FleetState::kNormal);
  EXPECT_GE(fleet.stats().crashes_detected, 1u);
  EXPECT_GE(fleet.stats().recoveries_completed, 1u);
  // Injected aborts hit mid-command, and the aborted command is re-run
  // from the checkpoint+ring — the run still converges to the exact
  // uninterrupted state.
  EXPECT_EQ(SerializeDeterministic(cp), uninterrupted);
}

TEST(ShardSupervisorTest, StallSurfacesAsDegradedThenClears) {
  const graph::Digraph g = TestNetwork(99, 20);
  const engine::ChurnTrace trace = MakeTrace(g, 1, 19);
  ShardedEngineOptions options = SupervisedOptions(2, 4);
  options.stall_timeout = std::chrono::milliseconds(10);
  options.inject_faults = true;
  options.fault_spec.seed = 3;
  faults::SiteSpec& drain =
      options.fault_spec.at(faults::FaultSite::kQueueDrain);
  drain.delay_probability = 1.0;
  drain.delay = std::chrono::milliseconds(300);

  ShardedEngine fleet(g, options);
  std::vector<FlowId64> active;
  SubmitEpoch(fleet, trace, 0, active);

  // Poll the supervisor while the workers sit in their injected delays.
  // Generous deadline: scheduling on a loaded single-core host can hold
  // a worker off its queue for a while before the delay even starts.
  bool degraded_seen = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    fleet.Supervise();
    if (fleet.stats().stalls_detected >= 1) {
      degraded_seen = fleet.fleet_state() == FleetState::kShardDegraded;
      break;
    }
  }
  EXPECT_TRUE(degraded_seen) << "stall never detected";

  fleet.Drain();
  fleet.Supervise();
  EXPECT_EQ(fleet.fleet_state(), FleetState::kNormal);
  EXPECT_EQ(fleet.stats().crashes_detected, 0u);  // waited out, not killed
  const FleetSnapshot snapshot = fleet.Snapshot();
  EXPECT_EQ(snapshot.shards[0].active_flows + snapshot.shards[1].active_flows,
            active.size());
}

TEST(ShardSupervisorTest, CheckpointCadenceBoundsReplay) {
  const graph::Digraph g = TestNetwork(101);
  const engine::ChurnTrace trace = MakeTrace(g, 12, 23);
  ShardedEngineOptions options = SupervisedOptions(2, 6);
  options.supervisor_checkpoint_interval_epochs = 2;

  const std::string uninterrupted =
      RunWithCrash(g, trace, options, 0, 0);
  FleetStats stats;
  const std::string crashed =
      RunWithCrash(g, trace, options, 11, 1, &stats);
  EXPECT_EQ(crashed, uninterrupted);
  // Twelve epochs at a two-epoch cadence: several captures beyond the
  // construction-time one, and a late crash replays only the short tail
  // since the last capture, not the whole run.
  EXPECT_GE(stats.supervisor_checkpoints, 4u);
  EXPECT_LT(stats.redo_replayed, trace.epochs.size());
}

}  // namespace
}  // namespace tdmd::shard
