// Tests for the invariant-audit library (src/analysis).
//
// The core of the suite is a corruption matrix: start from a known-valid
// placement on the paper's Fig. 5 instance, break it in one specific way,
// and assert the auditor reports exactly that class of violation.  A
// validator that cannot reject seeded corruptions proves nothing when it
// accepts real results.
#include "analysis/audit.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "core/dp_tree.hpp"
#include "core/gtp.hpp"
#include "core/hat.hpp"
#include "core/objective.hpp"
#include "test_util.hpp"

namespace tdmd {
namespace {

using analysis::AuditOptions;
using analysis::AuditReport;

/// Valid placement on the paper instance with two middleboxes, chosen so
/// that flows f3/f4 (paths through v6) see *two* deployed vertices — the
/// non-nearest corruption needs an alternative server to point at.
core::PlacementResult MakeValidResult(const core::Instance& instance) {
  core::PlacementResult result;
  result.deployment =
      core::Deployment(instance.num_vertices(), {test::kV6, test::kV1});
  result.allocation = core::Allocate(instance, result.deployment);
  result.bandwidth = core::EvaluateBandwidth(instance, result.deployment);
  result.feasible = result.allocation.AllServed();
  return result;
}

class AuditTest : public ::testing::Test {
 protected:
  core::Instance instance_ = test::PaperInstance();
  core::PlacementResult valid_ = MakeValidResult(instance_);
};

TEST_F(AuditTest, ValidResultPassesAllChecks) {
  const AuditReport report =
      analysis::AuditPlacementResult(instance_, valid_);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST_F(AuditTest, ValidResultPassesWithBudgetAndFeasibility) {
  AuditOptions options;
  options.max_middleboxes = 2;
  options.require_feasible = true;
  const AuditReport report =
      analysis::AuditPlacementResult(instance_, valid_, options);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST_F(AuditTest, DetectsUnservedFlow) {
  core::PlacementResult corrupted = valid_;
  // Flow f3 (index 2) has v6 on its path but claims to be unserved.
  corrupted.allocation.serving_vertex[2] = kInvalidVertex;
  const AuditReport report =
      analysis::AuditPlacementResult(instance_, corrupted);
  EXPECT_TRUE(report.Has(analysis::issue::kUnservedFlow))
      << report.ToString();
}

TEST_F(AuditTest, DetectsDoubleServe) {
  core::PlacementResult corrupted = valid_;
  // A fifth allocation entry means some flow is served twice: the
  // serving-vertex list no longer bijects onto the flow set.
  corrupted.allocation.serving_vertex.push_back(test::kV6);
  const AuditReport report =
      analysis::AuditPlacementResult(instance_, corrupted);
  EXPECT_TRUE(report.Has(analysis::issue::kAllocationSize))
      << report.ToString();
}

TEST_F(AuditTest, DetectsNonNearestServingVertex) {
  core::PlacementResult corrupted = valid_;
  // Flow f3's path visits deployed v6 (position 1) before deployed v1
  // (position 3); serving at the root violates the forced-optimal F.
  corrupted.allocation.serving_vertex[2] = test::kV1;
  const AuditReport report =
      analysis::AuditPlacementResult(instance_, corrupted);
  EXPECT_TRUE(report.Has(analysis::issue::kNonNearestServer))
      << report.ToString();
}

TEST_F(AuditTest, DetectsPhantomServer) {
  core::PlacementResult corrupted = valid_;
  // v2 is on flow f1's path but hosts no middlebox.
  corrupted.allocation.serving_vertex[0] = test::kV2;
  const AuditReport report =
      analysis::AuditPlacementResult(instance_, corrupted);
  EXPECT_TRUE(report.Has(analysis::issue::kPhantomServer))
      << report.ToString();
}

TEST_F(AuditTest, DetectsOffPathServer) {
  core::PlacementResult corrupted = valid_;
  // v6 hosts a middlebox but is nowhere on flow f1's path (v4-v2-v1).
  corrupted.allocation.serving_vertex[0] = test::kV6;
  const AuditReport report =
      analysis::AuditPlacementResult(instance_, corrupted);
  EXPECT_TRUE(report.Has(analysis::issue::kOffPathServer))
      << report.ToString();
}

TEST_F(AuditTest, DetectsStaleObjective) {
  core::PlacementResult corrupted = valid_;
  corrupted.bandwidth += 3.0;
  const AuditReport report =
      analysis::AuditPlacementResult(instance_, corrupted);
  EXPECT_TRUE(report.Has(analysis::issue::kStaleObjective))
      << report.ToString();
  // Nothing else should trip: the deployment/allocation remain valid.
  EXPECT_EQ(report.issues.size(), 1u) << report.ToString();
}

TEST_F(AuditTest, DetectsBudgetViolation) {
  AuditOptions options;
  options.max_middleboxes = 1;  // valid_ deploys two middleboxes
  const AuditReport report =
      analysis::AuditPlacementResult(instance_, valid_, options);
  EXPECT_TRUE(report.Has(analysis::issue::kBudgetExceeded))
      << report.ToString();
}

TEST_F(AuditTest, DetectsWrongFeasibleFlag) {
  core::PlacementResult corrupted = valid_;
  corrupted.feasible = false;  // allocation says every flow is served
  const AuditReport report =
      analysis::AuditPlacementResult(instance_, corrupted);
  EXPECT_TRUE(report.Has(analysis::issue::kFeasibleFlag))
      << report.ToString();
}

TEST_F(AuditTest, FlagsInfeasibilityOnlyWhenRequired) {
  core::PlacementResult partial;
  partial.deployment =
      core::Deployment(instance_.num_vertices(), {test::kV6});
  partial.allocation = core::Allocate(instance_, partial.deployment);
  partial.bandwidth = core::EvaluateBandwidth(instance_, partial.deployment);
  partial.feasible = false;  // f1/f4 have no middlebox on their paths
  EXPECT_TRUE(analysis::AuditPlacementResult(instance_, partial).ok());

  AuditOptions options;
  options.require_feasible = true;
  const AuditReport report =
      analysis::AuditPlacementResult(instance_, partial, options);
  EXPECT_TRUE(report.Has(analysis::issue::kInfeasible))
      << report.ToString();
}

TEST_F(AuditTest, GainSequenceAudit) {
  EXPECT_TRUE(analysis::AuditGreedyGainSequence({5.0, 3.0, 3.0, 0.5}).ok());
  EXPECT_TRUE(analysis::AuditGreedyGainSequence({}).ok());
  EXPECT_TRUE(analysis::AuditGreedyGainSequence({3.0, 5.0})
                  .Has(analysis::issue::kGainNotMonotone));
  EXPECT_TRUE(analysis::AuditGreedyGainSequence({-1.0})
                  .Has(analysis::issue::kGainNegative));
}

TEST_F(AuditTest, TreePlacementAuditRejectsMismatchedTree) {
  // A tree over a different vertex universe cannot validate this result.
  const graph::Tree small(
      std::vector<VertexId>{kInvalidVertex, 0, 0});
  const AuditReport report =
      analysis::AuditTreePlacement(instance_, small, valid_);
  EXPECT_TRUE(report.Has(analysis::issue::kTreeMismatch))
      << report.ToString();
}

TEST_F(AuditTest, CheckAuditAbortsOnCorruption) {
  core::PlacementResult corrupted = valid_;
  corrupted.bandwidth += 100.0;
  const AuditReport report =
      analysis::AuditPlacementResult(instance_, corrupted);
  EXPECT_DEATH(analysis::CheckAudit(report), "stale-objective");
}

TEST_F(AuditTest, RecomputeBandwidthMatchesEvaluateBandwidth) {
  // Two independent objective implementations (edge-walk vs per-flow
  // formula) must agree on arbitrary deployments.
  Rng rng(20260805);
  for (int trial = 0; trial < 30; ++trial) {
    const auto tree_case = test::MakeRandomTreeCase(18, 0.4, rng);
    core::Deployment deployment(tree_case.instance.num_vertices());
    for (VertexId v = 0; v < tree_case.instance.num_vertices(); ++v) {
      if (rng.NextBool(0.3)) deployment.Add(v);
    }
    const core::Allocation allocation =
        core::Allocate(tree_case.instance, deployment);
    EXPECT_NEAR(
        analysis::RecomputeBandwidth(tree_case.instance, allocation),
        core::EvaluateBandwidth(tree_case.instance, deployment), 1e-9);
  }
}

TEST_F(AuditTest, AlgorithmOutputsPassTheAuditor) {
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const auto tree_case = test::MakeRandomTreeCase(20, 0.5, rng);
    const auto gtp = core::Gtp(tree_case.instance);
    EXPECT_TRUE(
        analysis::AuditPlacementResult(tree_case.instance, gtp).ok());

    const auto hat = core::Hat(tree_case.instance, tree_case.tree, 2);
    EXPECT_TRUE(analysis::AuditTreePlacement(tree_case.instance,
                                             tree_case.tree, hat)
                    .ok());

    const auto dp = core::DpTree(tree_case.instance, tree_case.tree, 3);
    AuditOptions options;
    options.max_middleboxes = 3;
    options.require_feasible = true;
    EXPECT_TRUE(analysis::AuditTreePlacement(tree_case.instance,
                                             tree_case.tree, dp, options)
                    .ok());
  }
}

}  // namespace
}  // namespace tdmd
