#include "core/dp_scaled.hpp"

#include <gtest/gtest.h>

#include "core/dp_tree.hpp"
#include "test_util.hpp"
#include "traffic/generator.hpp"

namespace tdmd::core {
namespace {

TEST(DpScaledTest, EpsilonZeroIsExactDp) {
  Instance instance = test::PaperInstance();
  const graph::Tree tree = test::PaperTree();
  for (std::size_t k = 1; k <= 4; ++k) {
    const ScaledDpResult scaled = DpTreeScaled(instance, tree, k, 0.0);
    const PlacementResult exact = DpTree(instance, tree, k);
    EXPECT_EQ(scaled.scale, 1);
    EXPECT_DOUBLE_EQ(scaled.error_bound, 0.0);
    EXPECT_NEAR(scaled.result.bandwidth, exact.bandwidth, 1e-12);
  }
}

TEST(DpScaledTest, SmallEpsilonKeepsScaleOne) {
  // epsilon * r_max < 1 floors to scale 1 (exact).
  Instance instance = test::PaperInstance();  // r_max = 5
  const graph::Tree tree = test::PaperTree();
  const ScaledDpResult scaled = DpTreeScaled(instance, tree, 2, 0.1);
  EXPECT_EQ(scaled.scale, 1);
  EXPECT_DOUBLE_EQ(scaled.result.bandwidth, 16.5);
}

TEST(DpScaledTest, ErrorBoundFormula) {
  // Large rates so scaling engages: rates x100 on the paper tree.
  const graph::Tree tree = test::PaperTree();
  traffic::FlowSet flows = test::PaperFlows(tree);
  for (auto& f : flows) f.rate *= 100;  // r_max = 500, sum |p| = 10
  Instance instance = MakeTreeInstance(tree, flows, 0.5);
  const ScaledDpResult scaled = DpTreeScaled(instance, tree, 2, 0.1);
  EXPECT_EQ(scaled.scale, 50);  // floor(0.1 * 500)
  EXPECT_DOUBLE_EQ(scaled.error_bound, 2.0 * 50 * 10);
}

class ScaledWithinBound : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScaledWithinBound, GapIsCertified) {
  Rng rng(GetParam());
  const graph::Tree tree = topology::RandomBoundedTree(
      static_cast<VertexId>(rng.NextInt(6, 20)), 3, rng);
  traffic::FlowSet flows;
  for (VertexId leaf : tree.Leaves()) {
    traffic::Flow f;
    f.src = leaf;
    f.dst = tree.root();
    f.rate = rng.NextInt(50, 2000);  // large, precision-heavy rates
    f.path.vertices = tree.PathToRoot(leaf);
    flows.push_back(std::move(f));
  }
  const double lambda = rng.NextDouble(0.0, 1.0);
  Instance instance = MakeTreeInstance(tree, flows, lambda);
  const std::size_t k = 1 + static_cast<std::size_t>(rng.NextBounded(4));

  const PlacementResult exact = DpTree(instance, tree, k);
  for (double epsilon : {0.02, 0.1, 0.3}) {
    const ScaledDpResult scaled = DpTreeScaled(instance, tree, k, epsilon);
    EXPECT_TRUE(scaled.result.feasible);
    EXPECT_LE(scaled.result.deployment.size(), k);
    // Certified: scaled optimum within error_bound of the true optimum.
    EXPECT_LE(scaled.result.bandwidth,
              exact.bandwidth + scaled.error_bound + 1e-6)
        << "epsilon=" << epsilon << " scale=" << scaled.scale;
    // And never better than the true optimum (sanity).
    EXPECT_GE(scaled.result.bandwidth + 1e-6, exact.bandwidth);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScaledWithinBound,
                         ::testing::Range<std::uint64_t>(1, 21));

TEST(DpScaledTest, ScalingShrinksRuntimeDimension) {
  // Not a wall-clock test (flaky); assert the *scale* grows with epsilon,
  // which is the dimension reduction itself.
  Rng rng(5);
  const graph::Tree tree = topology::RandomBoundedTree(15, 3, rng);
  traffic::FlowSet flows;
  for (VertexId leaf : tree.Leaves()) {
    traffic::Flow f;
    f.src = leaf;
    f.dst = tree.root();
    f.rate = 1000;
    f.path.vertices = tree.PathToRoot(leaf);
    flows.push_back(std::move(f));
  }
  Instance instance = MakeTreeInstance(tree, flows, 0.5);
  const ScaledDpResult fine = DpTreeScaled(instance, tree, 3, 0.05);
  const ScaledDpResult coarse = DpTreeScaled(instance, tree, 3, 0.5);
  EXPECT_LT(fine.scale, coarse.scale);
  EXPECT_LT(fine.error_bound, coarse.error_bound);
}

TEST(DpScaledTest, EmptyFlowSet) {
  const graph::Tree tree = test::PaperTree();
  Instance instance = MakeTreeInstance(tree, {}, 0.5);
  const ScaledDpResult scaled = DpTreeScaled(instance, tree, 2, 0.5);
  EXPECT_TRUE(scaled.result.feasible);
  EXPECT_DOUBLE_EQ(scaled.result.bandwidth, 0.0);
}

}  // namespace
}  // namespace tdmd::core
