// TSan-targeted stress: reader threads hammer Engine::Metrics /
// DumpMetrics / QualityTimeline while the async engine churns with a
// tracer installed (Metrics also reads the tracer's per-ring drop
// counters, so the exposition path races against ring writers unless the
// locking is right).  Plus deterministic coverage for
// Tracer::DroppedTotal over rings with differing drop counts and for
// histogram merge/snapshot coherence.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/churn_trace.hpp"
#include "engine/engine.hpp"
#include "obs/histogram.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "topology/generators.hpp"

namespace tdmd::obs {
namespace {

TEST(ObsMetricsStress, ConcurrentMetricsReadsDuringChurn) {
  Rng rng(101);
  const graph::Digraph network = topology::Waxman(18, 0.5, 0.4, rng);
  core::ChurnModel churn;
  churn.arrival_count = 10;
  churn.departure_probability = 0.25;

  for (int iteration = 0; iteration < 2; ++iteration) {
    // Small rings so drop counters actually move while Metrics reads them.
    Tracer tracer(/*ring_capacity=*/256);
    InstallTracer(&tracer);
    {
      engine::EngineOptions options;
      options.k = 4;
      options.synchronous = false;
      options.solver_threads = 2;
      engine::Engine eng(network, options);

      std::atomic<bool> stop{false};
      std::atomic<std::uint64_t> reads{0};
      std::vector<std::thread> readers;
      readers.emplace_back([&] {
        while (!stop.load(std::memory_order_acquire)) {
          std::ostringstream os;
          eng.DumpMetrics(os, MetricsFormat::kPrometheus);
          reads.fetch_add(os.str().empty() ? 0 : 1);
          std::this_thread::yield();
        }
      });
      readers.emplace_back([&] {
        while (!stop.load(std::memory_order_acquire)) {
          const MetricsRegistry registry = eng.Metrics();
          std::ostringstream os;
          registry.Render(os, MetricsFormat::kJson);
          const QualityTimelineSnapshot timeline = eng.QualityTimeline();
          reads.fetch_add(1 + timeline.samples.size() * 0);
          std::this_thread::yield();
        }
      });

      Rng trace_rng(102 + static_cast<std::uint64_t>(iteration));
      const engine::ChurnTrace trace =
          engine::BuildChurnTrace(network, churn, 12, 0, trace_rng);
      std::vector<engine::FlowTicket> active;
      for (const engine::ChurnEpoch& epoch : trace.epochs) {
        std::vector<engine::FlowTicket> departing;
        for (std::size_t position : epoch.departures) {
          departing.push_back(active[position]);
        }
        for (auto it = epoch.departures.rbegin();
             it != epoch.departures.rend(); ++it) {
          active.erase(active.begin() + static_cast<std::ptrdiff_t>(*it));
        }
        const auto result = eng.SubmitBatch(epoch.arrivals, departing);
        active.insert(active.end(), result.tickets.begin(),
                      result.tickets.end());
      }
      eng.WaitIdle();

      // The final dump, taken while the tracer is still installed, must
      // carry both the quality gauges and the trace drop counter.
      std::ostringstream os;
      eng.DumpMetrics(os, MetricsFormat::kPrometheus);
      EXPECT_NE(os.str().find("tdmd_quality_samples_total"),
                std::string::npos);
      EXPECT_NE(os.str().find("tdmd_trace_dropped_total"),
                std::string::npos);

      stop.store(true, std::memory_order_release);
      for (std::thread& reader : readers) reader.join();
      EXPECT_GT(reads.load(), 0u);
    }
    InstallTracer(nullptr);
    (void)tracer.Drain();
  }
}

TEST(ObsMetricsStress, DroppedTotalSumsRingsWithDifferingDropCounts) {
  Tracer tracer(/*ring_capacity=*/8);
  InstallTracer(&tracer);
  // This thread's ring wraps 12 times; the helper thread's ring never
  // wraps, so the total must reflect two rings in different states.
  for (int i = 0; i < 20; ++i) {
    TraceInstant(TracePhase::kQualitySample, static_cast<std::uint64_t>(i));
  }
  std::thread helper([] {
    TraceInstant(TracePhase::kQualitySample, 100);
    TraceInstant(TracePhase::kQualitySample, 101);
  });
  helper.join();
  InstallTracer(nullptr);

  EXPECT_EQ(tracer.DroppedTotal(), 12u);
  const TraceDrainResult drained = tracer.Drain();
  EXPECT_EQ(drained.dropped, 12u);
  EXPECT_EQ(drained.events.size(), 10u);  // 8 survivors + 2 helper events
  // Drop counters are cumulative: draining must not reset them.
  EXPECT_EQ(tracer.DroppedTotal(), 12u);
}

TEST(ObsMetricsStress, HistogramMergeAndSnapshotStayCoherent) {
  LatencyHistogram a;
  LatencyHistogram b;
  for (std::uint64_t v = 1; v <= 100; ++v) a.Record(v);
  for (std::uint64_t v = 1000; v <= 1004; ++v) b.Record(v);

  a.Merge(b);
  EXPECT_EQ(a.count(), 105u);
  EXPECT_EQ(a.min(), 1u);
  EXPECT_EQ(a.max(), 1004u);

  LatencyHistogram restored;
  ASSERT_TRUE(restored.Restore(a.Snapshot()));
  EXPECT_EQ(restored.count(), a.count());
  EXPECT_EQ(restored.sum(), a.sum());
  EXPECT_EQ(restored.Quantile(0.5), a.Quantile(0.5));
}

}  // namespace
}  // namespace tdmd::obs
