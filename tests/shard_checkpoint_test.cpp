// Fleet checkpoint round-trips (DESIGN.md Section 13.4): the
// `shardfleet v1` container is byte-stable, a restored fleet resumes
// mid-churn with the same published placements as the uninterrupted run,
// and a single-shard fleet embeds a block byte-identical to the plain
// engine's `engine-checkpoint v1`.
//
// Snapshot() runs a certificate-refresh round that advances the quality
// trackers, so these tests only call Snapshot() at points that are
// symmetric between the runs being compared.
#include "shard/fleet_io.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "engine/churn_trace.hpp"
#include "engine/engine.hpp"
#include "io/text_format.hpp"
#include "checkpoint_compare.hpp"
#include "shard/sharded_engine.hpp"
#include "topology/generators.hpp"

namespace tdmd::shard {
namespace {

graph::Digraph TestNetwork(std::uint64_t seed, VertexId n = 30) {
  Rng rng(seed);
  return topology::Waxman(n, 0.5, 0.4, rng);
}

engine::ChurnTrace MakeTrace(const graph::Digraph& g, std::size_t epochs,
                             std::uint64_t seed) {
  core::ChurnModel churn;
  churn.arrival_count = 6;
  churn.departure_probability = 0.3;
  return engine::BuildChurnTrace(g, churn, epochs, 0, seed);
}

void ReplayFleet(ShardedEngine& fleet, const engine::ChurnTrace& trace,
                 std::size_t from, std::size_t to,
                 std::vector<FlowId64>& active) {
  for (std::size_t e = from; e < to; ++e) {
    const engine::ChurnEpoch& epoch = trace.epochs[e];
    std::vector<FlowId64> departures;
    departures.reserve(epoch.departures.size());
    for (const std::size_t index : epoch.departures) {
      departures.push_back(active[index]);
    }
    for (auto it = epoch.departures.rbegin(); it != epoch.departures.rend();
         ++it) {
      active.erase(active.begin() + static_cast<std::ptrdiff_t>(*it));
    }
    const ShardedEngine::BatchResult result =
        fleet.SubmitBatch(epoch.arrivals, departures);
    active.insert(active.end(), result.flow_ids.begin(),
                  result.flow_ids.end());
  }
  fleet.Drain();
}

ShardedEngineOptions FleetOptions(std::size_t shards, std::size_t budget) {
  ShardedEngineOptions options;
  options.partition.num_shards = shards;
  options.total_budget = budget;
  options.engine.lambda = 0.5;
  options.engine.move_threshold = 0.0;
  options.realloc_interval_epochs = 0;
  options.pin_threads = false;
  return options;
}

std::string Serialize(const FleetCheckpoint& checkpoint) {
  std::ostringstream os;
  WriteFleetCheckpoint(os, checkpoint);
  return os.str();
}

using test::SerializeDeterministic;

TEST(ShardCheckpointTest, WriteReadWriteIsByteIdentical) {
  const graph::Digraph g = TestNetwork(71);
  const engine::ChurnTrace trace = MakeTrace(g, 8, 3);
  ShardedEngine fleet(g, FleetOptions(3, 9));
  std::vector<FlowId64> active;
  ReplayFleet(fleet, trace, 0, trace.epochs.size(), active);

  const FleetCheckpoint cp = fleet.Checkpoint();
  const std::string first = Serialize(cp);

  std::istringstream is(first);
  const io::Parsed<FleetCheckpoint> parsed = ReadFleetCheckpoint(is);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(Serialize(*parsed.value), first);

  EXPECT_EQ(parsed.value->num_shards, 3u);
  EXPECT_EQ(parsed.value->epoch, cp.epoch);
  EXPECT_EQ(parsed.value->next_flow_id, cp.next_flow_id);
  EXPECT_EQ(parsed.value->budgets, cp.budgets);
  ASSERT_EQ(parsed.value->flows.size(), cp.flows.size());
  for (std::size_t i = 0; i < cp.flows.size(); ++i) {
    EXPECT_EQ(parsed.value->flows[i].id, cp.flows[i].id);
    EXPECT_EQ(parsed.value->flows[i].shard, cp.flows[i].shard);
    EXPECT_EQ(parsed.value->flows[i].ticket, cp.flows[i].ticket);
  }
}

TEST(ShardCheckpointTest, ResumesMidChurnWithSamePlacements) {
  const graph::Digraph g = TestNetwork(73);
  const engine::ChurnTrace trace = MakeTrace(g, 12, 5);
  const ShardedEngineOptions options = FleetOptions(2, 6);

  // Uninterrupted run over all 12 epochs.
  ShardedEngine uninterrupted(g, options);
  std::vector<FlowId64> active_a;
  ReplayFleet(uninterrupted, trace, 0, trace.epochs.size(), active_a);

  // Checkpoint a second fleet mid-churn...
  ShardedEngine first_half(g, options);
  std::vector<FlowId64> active_b;
  ReplayFleet(first_half, trace, 0, 6, active_b);
  const FleetCheckpoint cp = first_half.Checkpoint();

  // ...and resume it in a fresh fleet built with the identical options
  // (the checkpoint carries no partition seeds; the spec must match).
  ShardedEngine resumed(g, options);
  resumed.Restore(cp);
  std::vector<FlowId64> active_c;
  active_c.reserve(cp.flows.size());
  for (const FleetCheckpoint::FlowEntry& entry : cp.flows) {
    active_c.push_back(entry.id);
  }
  ASSERT_EQ(active_c, active_b);
  ReplayFleet(resumed, trace, 6, trace.epochs.size(), active_c);
  ASSERT_EQ(active_c, active_a);

  // Same published placements and accounting as the uninterrupted run.
  FleetSnapshot snap_a = uninterrupted.Snapshot();
  FleetSnapshot snap_c = resumed.Snapshot();
  EXPECT_EQ(snap_c.epoch, snap_a.epoch);
  EXPECT_EQ(snap_c.feasible, snap_a.feasible);
  EXPECT_NEAR(snap_c.bandwidth, snap_a.bandwidth, 1e-9);
  EXPECT_EQ(snap_c.deployment.ToString(), snap_a.deployment.ToString());
  ASSERT_EQ(snap_c.shards.size(), snap_a.shards.size());
  for (std::size_t s = 0; s < snap_a.shards.size(); ++s) {
    EXPECT_EQ(snap_c.shards[s].boxes, snap_a.shards[s].boxes);
    EXPECT_EQ(snap_c.shards[s].budget, snap_a.shards[s].budget);
    EXPECT_EQ(snap_c.shards[s].active_flows, snap_a.shards[s].active_flows);
    EXPECT_NEAR(snap_c.shards[s].bandwidth, snap_a.shards[s].bandwidth, 1e-9);
  }
  // No departure was routed to a stale ticket on the resumed side.
  const FleetCheckpoint final_c = resumed.Checkpoint();
  for (const engine::EngineCheckpoint& ecp : final_c.engines) {
    EXPECT_EQ(ecp.stats.stale_departures, 0u);
  }
  // Both runs end in the same serialized engine state, byte for byte
  // (modulo the wall-clock latency histograms).
  const FleetCheckpoint final_a = uninterrupted.Checkpoint();
  EXPECT_EQ(SerializeDeterministic(final_c), SerializeDeterministic(final_a));
}

TEST(ShardCheckpointTest, SingleShardEmbedsPlainEngineCheckpoint) {
  const graph::Digraph g = TestNetwork(79, 20);
  const engine::ChurnTrace trace = MakeTrace(g, 6, 7);

  const ShardedEngineOptions options = FleetOptions(1, 5);
  ShardedEngine fleet(g, options);
  std::vector<FlowId64> fleet_active;
  ReplayFleet(fleet, trace, 0, trace.epochs.size(), fleet_active);
  const FleetCheckpoint cp = fleet.Checkpoint();
  ASSERT_EQ(cp.engines.size(), 1u);

  // The same trace on a plain engine with the fleet's effective options.
  engine::EngineOptions plain = options.engine;
  plain.k = options.total_budget;
  plain.synchronous = true;
  plain.solver_threads = 1;
  engine::Engine eng(g, plain);
  std::vector<engine::FlowTicket> engine_active;
  for (const engine::ChurnEpoch& epoch : trace.epochs) {
    std::vector<engine::FlowTicket> departures;
    for (const std::size_t index : epoch.departures) {
      departures.push_back(engine_active[index]);
    }
    for (auto it = epoch.departures.rbegin(); it != epoch.departures.rend();
         ++it) {
      engine_active.erase(engine_active.begin() +
                          static_cast<std::ptrdiff_t>(*it));
    }
    const engine::Engine::BatchResult result =
        eng.SubmitBatch(epoch.arrivals, departures);
    engine_active.insert(engine_active.end(), result.tickets.begin(),
                         result.tickets.end());
  }
  eng.WaitIdle();

  // The embedded block degenerates to the plain `engine-checkpoint v1`
  // (histograms excluded: the two runs' timing samples differ).
  const std::string embedded = SerializeDeterministic(cp.engines[0]);
  EXPECT_EQ(embedded, SerializeDeterministic(eng.Checkpoint()));

  const std::string fleet_text = SerializeDeterministic(cp);
  EXPECT_NE(fleet_text.find("shardfleet v1"), std::string::npos);
  EXPECT_NE(fleet_text.find("engine-checkpoint v1"), std::string::npos);
  EXPECT_NE(fleet_text.find(embedded), std::string::npos);
}

TEST(ShardCheckpointTest, FileRoundTripMatchesStreamForm) {
  const graph::Digraph g = TestNetwork(83, 20);
  const engine::ChurnTrace trace = MakeTrace(g, 4, 9);
  ShardedEngine fleet(g, FleetOptions(2, 6));
  std::vector<FlowId64> active;
  ReplayFleet(fleet, trace, 0, trace.epochs.size(), active);
  const FleetCheckpoint cp = fleet.Checkpoint();

  const std::string path =
      ::testing::TempDir() + "/tdmd_fleet_checkpoint_test.txt";
  ASSERT_TRUE(WriteFleetCheckpointFile(path, cp));
  const io::Parsed<FleetCheckpoint> parsed = ReadFleetCheckpointFile(path);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(Serialize(*parsed.value), Serialize(cp));
}

TEST(ShardCheckpointTest, RejectsCorruptInput) {
  const graph::Digraph g = TestNetwork(89, 20);
  const engine::ChurnTrace trace = MakeTrace(g, 3, 11);
  ShardedEngine fleet(g, FleetOptions(2, 6));
  std::vector<FlowId64> active;
  ReplayFleet(fleet, trace, 0, trace.epochs.size(), active);
  const std::string good = Serialize(fleet.Checkpoint());

  {
    // Wrong container header.
    std::string bad = good;
    bad.replace(bad.find("shardfleet v1"), 13, "shardfleet v9");
    std::istringstream is(bad);
    EXPECT_FALSE(ReadFleetCheckpoint(is).ok());
  }
  {
    // Truncated: missing terminator (and likely a partial engine block).
    std::istringstream is(good.substr(0, good.size() / 2));
    EXPECT_FALSE(ReadFleetCheckpoint(is).ok());
  }
  {
    // Flow-table count disagrees with the entries that follow.
    std::string bad = good;
    const std::string needle = "flow-table ";
    const std::size_t at = bad.find(needle);
    ASSERT_NE(at, std::string::npos);
    const std::size_t cut = at + needle.size();
    bad = bad.substr(0, cut) + "9" + bad.substr(cut);  // inflate the count
    std::istringstream is(bad);
    EXPECT_FALSE(ReadFleetCheckpoint(is).ok());
  }
}

}  // namespace
}  // namespace tdmd::shard
