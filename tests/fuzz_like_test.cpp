// Robustness / failure-injection suite: random and adversarial inputs
// must produce diagnostics, never crashes or silent misparses, and the
// objective stack must agree with itself on *every* deployment of the
// paper instance (exhaustive, not sampled).
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/rng.hpp"
#include "core/objective.hpp"
#include "io/text_format.hpp"
#include "sim/link_sim.hpp"
#include "test_util.hpp"

namespace tdmd {
namespace {

// ---------------------------------------------------------------------
// Parser fuzzing: random token soup.
// ---------------------------------------------------------------------

std::string RandomGarbageLine(Rng& rng) {
  static const char* kWords[] = {"digraph", "arc",   "tree",  "parent",
                                 "flows",   "flow",  "lambda", "box",
                                 "-1",      "999999", "0",     "abc",
                                 "1e309",   "#",      "v1",    ""};
  std::string line;
  const int tokens = static_cast<int>(rng.NextInt(0, 5));
  for (int t = 0; t < tokens; ++t) {
    if (t > 0) line += ' ';
    line += kWords[rng.NextBounded(std::size(kWords))];
  }
  return line;
}

class ParserFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserFuzz, RandomInputNeverCrashes) {
  Rng rng(GetParam());
  for (int doc = 0; doc < 200; ++doc) {
    std::string text;
    const int lines = static_cast<int>(rng.NextInt(1, 12));
    for (int l = 0; l < lines; ++l) {
      text += RandomGarbageLine(rng);
      text += '\n';
    }
    {
      std::istringstream is(text);
      const auto parsed = io::ReadInstance(is);
      if (!parsed.ok()) {
        EXPECT_FALSE(parsed.error.empty());
      }
    }
    {
      std::istringstream is(text);
      const auto parsed = io::ReadDigraph(is);
      if (!parsed.ok()) {
        EXPECT_FALSE(parsed.error.empty());
      }
    }
    {
      std::istringstream is(text);
      const auto parsed = io::ReadTree(is);
      if (!parsed.ok()) {
        EXPECT_FALSE(parsed.error.empty());
      }
    }
    {
      std::istringstream is(text);
      const auto parsed = io::ReadFlows(is);
      if (!parsed.ok()) {
        EXPECT_FALSE(parsed.error.empty());
      }
    }
    {
      std::istringstream is(text);
      const auto parsed = io::ReadDeployment(is, 8);
      if (!parsed.ok()) {
        EXPECT_FALSE(parsed.error.empty());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz,
                         ::testing::Range<std::uint64_t>(1, 11));

TEST(ParserFuzzTest, MutatedValidInstanceDegradesGracefully) {
  // Take a valid serialized instance, corrupt single characters, and
  // require parse() to either succeed or produce a diagnostic.
  std::ostringstream oss;
  io::WriteInstance(oss, test::PaperInstance());
  const std::string valid = oss.str();
  Rng rng(42);
  for (int mutation = 0; mutation < 300; ++mutation) {
    std::string corrupted = valid;
    const auto position = static_cast<std::size_t>(
        rng.NextBounded(corrupted.size()));
    corrupted[position] = static_cast<char>('0' + rng.NextBounded(10));
    std::istringstream is(corrupted);
    const auto parsed = io::ReadInstance(is);
    if (!parsed.ok()) {
      EXPECT_FALSE(parsed.error.empty());
    } else {
      // If it still parses, it must be a coherent instance.
      EXPECT_GE(parsed.value->num_flows(), 0);
    }
  }
}

// ---------------------------------------------------------------------
// Exhaustive objective cross-validation: all 2^8 deployments of the
// paper tree, three lambdas, three oracles (closed form, incremental
// ServedState, link simulator).
// ---------------------------------------------------------------------

TEST(ExhaustiveObjective, AllDeploymentsAllOracles) {
  const graph::Tree tree = test::PaperTree();
  for (double lambda : {0.0, 0.5, 0.9}) {
    const core::Instance instance =
        core::MakeTreeInstance(tree, test::PaperFlows(tree), lambda);
    for (unsigned mask = 0; mask < 256; ++mask) {
      core::Deployment plan(instance.num_vertices());
      core::ServedState state(instance);
      for (VertexId v = 0; v < 8; ++v) {
        if (mask & (1u << v)) {
          plan.Add(v);
          state.Deploy(v);
        }
      }
      const Bandwidth closed_form =
          core::EvaluateBandwidth(instance, plan);
      ASSERT_NEAR(closed_form, state.bandwidth(), 1e-9)
          << "mask=" << mask << " lambda=" << lambda;
      const sim::LinkLoadReport report =
          sim::SimulateLinkLoads(instance, plan);
      ASSERT_NEAR(closed_form, report.total, 1e-9)
          << "mask=" << mask << " lambda=" << lambda;
      // Feasibility consistency across the stack.
      ASSERT_EQ(core::IsFeasible(instance, plan),
                report.unserved_flows == 0)
          << "mask=" << mask;
    }
  }
}

TEST(ExhaustiveObjective, MarginalGainsConsistentOnAllPrefixes) {
  // For every deployment subset P (as a prefix of a fixed order) and
  // every next vertex v: MarginalDecrement(v) == d(P u {v}) - d(P).
  const core::Instance instance = test::PaperInstance();
  for (unsigned mask = 0; mask < 256; ++mask) {
    core::Deployment plan(instance.num_vertices());
    core::ServedState state(instance);
    for (VertexId v = 0; v < 8; ++v) {
      if (mask & (1u << v)) {
        plan.Add(v);
        state.Deploy(v);
      }
    }
    for (VertexId v = 0; v < 8; ++v) {
      if (mask & (1u << v)) continue;
      core::Deployment with_v = plan;
      with_v.Add(v);
      const Bandwidth expected =
          core::EvaluateBandwidth(instance, plan) -
          core::EvaluateBandwidth(instance, with_v);
      ASSERT_NEAR(state.MarginalDecrement(v), expected, 1e-9)
          << "mask=" << mask << " v=" << v;
    }
  }
}

}  // namespace
}  // namespace tdmd
