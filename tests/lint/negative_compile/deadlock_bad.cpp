// MUST NOT COMPILE under clang -Wthread-safety -Werror.
//
// Deliberately-inverted check for the TDMD_EXCLUDES annotations on the
// public Engine API: this hook claims (via Engine::state_mutex(), whose
// TDMD_RETURN_CAPABILITY ties it to state_mu_) to run with the engine
// lock held, then calls Engine::stats(), which excludes state_mu_ — a
// guaranteed self-deadlock.  The thread-safety analysis must reject the
// call; if this file ever compiles, the EXCLUDES contract on the public
// API has regressed.  See deadlock_ok.cpp for the accepted twin.
#include "engine/engine.hpp"

namespace {

void HookUnderEngineLock(tdmd::engine::Engine& eng)
    TDMD_REQUIRES(eng.state_mutex()) {
  (void)eng.stats();  // error: acquires a lock the caller already holds
}

void Caller(tdmd::engine::Engine& eng) {
  tdmd::MutexLock lock(eng.state_mutex());
  HookUnderEngineLock(eng);
}

}  // namespace
