// MUST COMPILE under clang -Wthread-safety -Werror.
//
// Accepted twin of deadlock_bad.cpp: acquiring the engine lock through
// the TDMD_RETURN_CAPABILITY accessor and calling a hook that REQUIRES
// it is exactly the contract the annotations encode, so the analysis
// must stay silent here.  A diagnostic in this file means the wrappers
// or the accessor annotation are broken, not the client.
#include "engine/engine.hpp"

namespace {

void HookUnderEngineLock(tdmd::engine::Engine& eng)
    TDMD_REQUIRES(eng.state_mutex()) {
  (void)eng;
}

void Caller(tdmd::engine::Engine& eng) {
  tdmd::MutexLock lock(eng.state_mutex());
  HookUnderEngineLock(eng);
}

}  // namespace
