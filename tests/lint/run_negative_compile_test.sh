#!/usr/bin/env bash
# Negative-compile test for the Clang Thread Safety annotations on the
# public Engine API.
#
#   deadlock_ok.cpp  — must compile under -Wthread-safety -Werror
#   deadlock_bad.cpp — must FAIL: it calls Engine::stats() (which
#                      TDMD_EXCLUDES state_mu_) while holding the lock.
#
# The analysis only exists in clang, so without clang++ on PATH the test
# skips (exit 77, wired to SKIP_RETURN_CODE in ctest).
set -u

here="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
repo_root="$(cd "${here}/../.." && pwd)"

if ! command -v clang++ >/dev/null 2>&1; then
  echo "skip: clang++ not found; thread-safety analysis is clang-only"
  exit 77
fi

flags=(-std=c++20 -I "${repo_root}/src" -fsyntax-only
  -Wthread-safety -Wthread-safety-beta -Werror)

echo "== deadlock_ok.cpp must compile =="
if ! clang++ "${flags[@]}" "${here}/negative_compile/deadlock_ok.cpp"; then
  echo "FAIL: deadlock_ok.cpp did not compile (annotations reject a legal client)"
  exit 1
fi

echo "== deadlock_bad.cpp must be rejected =="
if output=$(clang++ "${flags[@]}" \
    "${here}/negative_compile/deadlock_bad.cpp" 2>&1); then
  echo "FAIL: deadlock_bad.cpp compiled; the EXCLUDES contract on the"
  echo "      public Engine API no longer catches the self-deadlock"
  exit 1
fi
if ! grep -q "thread-safety" <<<"${output}"; then
  echo "FAIL: deadlock_bad.cpp was rejected, but not by the thread-safety"
  echo "      analysis:"
  echo "${output}"
  exit 1
fi

echo "ok: self-deadlock rejected, legal client accepted"
