// Fixture: std::chrono::system_clock used to measure a duration.  The
// clock is wall-adjusted, so the difference below can go negative.
// Expected findings (rule system-clock): lines 9 and 11.
#include <chrono>

namespace fixture {

long ElapsedNs() {
  const auto start = std::chrono::system_clock::now();
  volatile long sink = 0;
  const auto stop = std::chrono::system_clock::now();
  return static_cast<long>((stop - start).count() + sink);
}

}  // namespace fixture
