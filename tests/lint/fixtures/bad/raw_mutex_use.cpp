// Fixture: raw standard-library synchronization primitives outside
// src/common.  Expected findings (rule raw-mutex): line 7 (mutex),
// line 10 (lock_guard and mutex), line 13 (condition_variable).
#include <condition_variable>
#include <mutex>

std::mutex g_mu;

void Locked() {
  std::lock_guard<std::mutex> lock(g_mu);
}

std::condition_variable g_cv;
