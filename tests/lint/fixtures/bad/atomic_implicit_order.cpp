// Fixture: atomic operations relying on the defaulted seq_cst order.
// Expected findings (rule atomic-memory-order): lines 9, 11, 13.
#include <atomic>

namespace fixture {

std::atomic<int> counter{0};

int LoadDefaulted() { return counter.load(); }

void StoreDefaulted(int value) { counter.store(value); }

void IncrementOperator() { ++counter; }

int LoadExplicit() { return counter.load(std::memory_order_acquire); }

}  // namespace fixture
