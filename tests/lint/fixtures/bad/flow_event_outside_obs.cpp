// Fixture: Chrome flow-event emission outside src/obs.  Both the
// WriteChromeFlowEvent helper and a hand-rolled "ph":"s|t|f" phase
// literal must fire the flow-event rule; producers bind batch ids and
// let WriteChromeTrace stitch the chain.
#include <ostream>

namespace bad {

void EmitFlow(std::ostream& os, const void* event) {
  WriteChromeFlowEvent(os, event, 's');
  os << "{\"name\":\"flow\",\"ph\":\"f\",\"id\":7,\"bp\":\"e\"}";
}

}  // namespace bad
