// tdmd-lint: hot-path
// Fixture: banned formatting and clocks in a hot-path-tagged file.
// Expected findings (rule hot-path): line 10 (std::cout and std::endl),
// line 14 (system_clock::now).
#include <chrono>
#include <iostream>

namespace fixture {

void Report(long value) { std::cout << "value=" << value << std::endl; }

long WallClockNs() {
  return static_cast<long>(
      std::chrono::system_clock::now().time_since_epoch().count());
}

}  // namespace fixture
