// Fixture: header that uses std::vector without including <vector>, so it
// fails to compile as a standalone translation unit.
// Expected finding (rule header-self-contained): line 1.
#pragma once

namespace fixture {

inline std::vector<int> MakeVector() { return {1, 2, 3}; }

}  // namespace fixture
