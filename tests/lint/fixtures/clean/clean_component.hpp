// Fixture: a clean, self-contained header — atomics name their orders and
// no raw synchronization primitives appear.
#pragma once

#include <atomic>
#include <cstdint>

namespace fixture {

class Counter {
 public:
  void Add(std::uint64_t n) {
    total_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t Total() const {
    return total_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<std::uint64_t> total_{0};
};

}  // namespace fixture
