// tdmd-lint: hot-path — steady-clock reads only, no iostream formatting.
// Fixture: a clean hot-path-tagged source file.  The multi-line fetch_add
// regression-tests the balanced-paren scan (the memory order sits on the
// continuation line).
#include "clean_component.hpp"

#include <chrono>
#include <cstdint>

namespace fixture {

std::atomic<std::uint64_t> g_ticks{0};

void Tick() {
  g_ticks.fetch_add(
      1, std::memory_order_relaxed);
}

std::uint64_t MonotonicNs() {
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
}

}  // namespace fixture
