#!/usr/bin/env python3
"""Fixture-corpus test for tools/tdmd_lint.

Asserts that the bad corpus fires exactly the expected (file, line, rule)
findings, that the clean corpus is silent, and that the suppression-file
contract holds (suppressed findings disappear; a suppression without a
justification is itself a finding; unused suppressions do not fail the
run).  Runs in --mode text so results are identical with and without a
clang toolchain on PATH.
"""

import os
import re
import subprocess
import sys
import tempfile

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
LINT = os.path.join(REPO, "tools", "tdmd_lint")
BAD = os.path.join(HERE, "fixtures", "bad")
CLEAN = os.path.join(HERE, "fixtures", "clean")

FINDING_RE = re.compile(r"^(.+):(\d+): ([a-z][a-z-]*): ")

failures = []


def check(condition, label, detail=""):
    if condition:
        print(f"ok: {label}")
    else:
        failures.append(label)
        print(f"FAIL: {label}\n{detail}")


def run_lint(paths, src_root, suppressions=os.devnull):
    proc = subprocess.run(
        [
            sys.executable,
            LINT,
            "--mode",
            "text",
            "--src-root",
            src_root,
            "--suppressions",
            suppressions,
            *paths,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    findings = []
    for line in proc.stdout.splitlines():
        m = FINDING_RE.match(line)
        if m:
            findings.append(
                (
                    os.path.relpath(
                        os.path.join(REPO, m.group(1)), HERE
                    ).replace(os.sep, "/"),
                    int(m.group(2)),
                    m.group(3),
                )
            )
        elif line.strip():
            findings.append(("<unparsed>", 0, line))
    return proc, sorted(findings)


def main():
    # --- bad corpus fires exactly the expected findings ------------------
    expected = sorted(
        [
            ("fixtures/bad/atomic_implicit_order.cpp", 9, "atomic-memory-order"),
            ("fixtures/bad/atomic_implicit_order.cpp", 11, "atomic-memory-order"),
            ("fixtures/bad/atomic_implicit_order.cpp", 13, "atomic-memory-order"),
            ("fixtures/bad/flow_event_outside_obs.cpp", 10, "flow-event"),
            ("fixtures/bad/flow_event_outside_obs.cpp", 11, "flow-event"),
            ("fixtures/bad/hot_path_report.cpp", 10, "hot-path"),
            ("fixtures/bad/hot_path_report.cpp", 10, "hot-path"),
            ("fixtures/bad/hot_path_report.cpp", 14, "hot-path"),
            # system_clock::now in a hot-path file fires both rules.
            ("fixtures/bad/hot_path_report.cpp", 14, "system-clock"),
            ("fixtures/bad/not_self_contained.hpp", 1, "header-self-contained"),
            ("fixtures/bad/system_clock_timing.cpp", 9, "system-clock"),
            ("fixtures/bad/system_clock_timing.cpp", 11, "system-clock"),
            ("fixtures/bad/raw_mutex_use.cpp", 7, "raw-mutex"),
            ("fixtures/bad/raw_mutex_use.cpp", 10, "raw-mutex"),
            ("fixtures/bad/raw_mutex_use.cpp", 10, "raw-mutex"),
            ("fixtures/bad/raw_mutex_use.cpp", 13, "raw-mutex"),
        ]
    )
    proc, findings = run_lint([BAD], src_root=BAD)
    check(proc.returncode == 1, "bad corpus exits 1", proc.stderr)
    check(
        findings == expected,
        "bad corpus fires exactly the expected findings",
        f"expected:\n  "
        + "\n  ".join(map(str, expected))
        + "\ngot:\n  "
        + "\n  ".join(map(str, findings)),
    )

    # --- clean corpus is silent ------------------------------------------
    proc, findings = run_lint([CLEAN], src_root=CLEAN)
    check(
        proc.returncode == 0 and not findings,
        "clean corpus is silent",
        proc.stdout + proc.stderr,
    )

    # --- suppressions remove findings for their (path, rule) -------------
    with tempfile.NamedTemporaryFile("w", suffix=".txt", delete=False) as f:
        f.write(
            "# fixture suppression\n"
            "tests/lint/fixtures/bad/raw_mutex_use.cpp:raw-mutex: "
            "fixture exists to exercise the ban\n"
        )
        suppression_file = f.name
    try:
        proc, findings = run_lint(
            [BAD], src_root=BAD, suppressions=suppression_file
        )
        check(
            proc.returncode == 1
            and not any(rule == "raw-mutex" for _, _, rule in findings)
            and any(rule == "atomic-memory-order" for _, _, rule in findings),
            "suppression hides its (path, rule) and nothing else",
            "\n".join(map(str, findings)),
        )
    finally:
        os.unlink(suppression_file)

    # --- a justification-free suppression is itself a finding ------------
    with tempfile.NamedTemporaryFile("w", suffix=".txt", delete=False) as f:
        f.write("tests/lint/fixtures/bad/raw_mutex_use.cpp:raw-mutex:\n")
        malformed_file = f.name
    try:
        proc, _ = run_lint(
            [CLEAN], src_root=CLEAN, suppressions=malformed_file
        )
        check(
            proc.returncode == 1 and "suppression-format" in proc.stdout,
            "suppression without justification fails the run",
            proc.stdout + proc.stderr,
        )
    finally:
        os.unlink(malformed_file)

    # --- unused suppressions warn but do not fail ------------------------
    with tempfile.NamedTemporaryFile("w", suffix=".txt", delete=False) as f:
        f.write("src/nonexistent.cpp:raw-mutex: justified but unused\n")
        unused_file = f.name
    try:
        proc, findings = run_lint(
            [CLEAN], src_root=CLEAN, suppressions=unused_file
        )
        check(
            proc.returncode == 0
            and not findings
            and "unused suppression" in proc.stderr,
            "unused suppression is a note, not a failure",
            proc.stdout + proc.stderr,
        )
    finally:
        os.unlink(unused_file)

    if failures:
        print(f"{len(failures)} check(s) failed")
        return 1
    print("all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
