// Theorem 1 round-trip: a set-cover instance is coverable with k sets iff
// the reduced TDMD instance is feasible with k middleboxes, and vice versa.
#include "setcover/reduction.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "setcover/set_cover.hpp"
#include "test_util.hpp"

namespace tdmd::setcover {
namespace {

SetCoverInstance PaperFigure2() {
  SetCoverInstance sc;
  sc.universe_size = 4;
  sc.sets = {{0, 1, 3}, {0, 1}, {2}};
  return sc;
}

TEST(ForwardReductionTest, StructureOfPaperFigure2) {
  const SetCoverInstance sc = PaperFigure2();
  const TdmdFeasibilityInstance tdmd = ReduceSetCoverToTdmd(sc);
  // 3 set-vertices + sink.
  EXPECT_EQ(tdmd.graph.num_vertices(), 4);
  ASSERT_EQ(tdmd.flows.size(), 4u);
  // Flow 0 (= element f1) passes v0 (S1) and v1 (S2), then the sink.
  EXPECT_EQ(tdmd.flows[0].path.vertices,
            (std::vector<VertexId>{0, 1, 3}));
  // Flow 2 (= f3) only passes v2 (S3).
  EXPECT_EQ(tdmd.flows[2].path.vertices, (std::vector<VertexId>{2, 3}));
  EXPECT_TRUE(traffic::AllFlowsValid(tdmd.graph, tdmd.flows));
}

TEST(ForwardReductionTest, FeasibilityMatchesCoverDecision) {
  const SetCoverInstance sc = PaperFigure2();
  const TdmdFeasibilityInstance tdmd = ReduceSetCoverToTdmd(sc);
  // Deploying on the sink alone serves everything (every path ends
  // there), so exclude it the way the proof does: feasibility *via
  // set-vertices only* is what mirrors the cover.  Check via the
  // backward reduction restricted to set-vertices.
  SetCoverInstance back = ReduceTdmdToSetCover(tdmd.graph, tdmd.flows);
  back.sets.resize(sc.sets.size());  // drop the sink's set
  EXPECT_FALSE(CoverableWith(back, 1));
  EXPECT_TRUE(CoverableWith(back, 2));
}

TEST(BackwardReductionTest, SetsAreFlowsThroughVertex) {
  const graph::Tree tree = test::PaperTree();
  const traffic::FlowSet flows = test::PaperFlows(tree);
  const graph::Digraph g = tree.ToDigraph();
  const SetCoverInstance sc = ReduceTdmdToSetCover(g, flows);
  EXPECT_EQ(sc.universe_size, 4u);
  ASSERT_EQ(sc.sets.size(), 8u);
  // v1 (root) lies on every path.
  EXPECT_EQ(sc.sets[static_cast<std::size_t>(test::kV1)].size(), 4u);
  // v6 lies on the two right-subtree paths (flows 2 and 3).
  EXPECT_EQ(sc.sets[static_cast<std::size_t>(test::kV6)],
            (std::vector<std::size_t>{2, 3}));
  // Leaf v4 only sees its own flow.
  EXPECT_EQ(sc.sets[static_cast<std::size_t>(test::kV4)],
            (std::vector<std::size_t>{0}));
}

TEST(FeasibilityTest, PaperTreeThresholds) {
  const graph::Tree tree = test::PaperTree();
  const traffic::FlowSet flows = test::PaperFlows(tree);
  const graph::Digraph g = tree.ToDigraph();
  // One box at the root always suffices on trees.
  EXPECT_TRUE(FeasibleWith(g, flows, 1));
  EXPECT_TRUE(FeasibleWith(g, flows, 4));
  EXPECT_FALSE(FeasibleWith(g, flows, 0));
}

TEST(FeasibilityTest, EmptyFlowSetAlwaysFeasible) {
  const graph::Tree tree = test::PaperTree();
  EXPECT_TRUE(FeasibleWith(tree.ToDigraph(), {}, 0));
}

class RoundTripEquivalence : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(RoundTripEquivalence, CoverSizeSurvivesTheReduction) {
  Rng rng(GetParam());
  SetCoverInstance sc;
  sc.universe_size = static_cast<std::size_t>(rng.NextInt(3, 10));
  const auto num_sets = static_cast<std::size_t>(rng.NextInt(2, 7));
  sc.sets.resize(num_sets);
  for (std::size_t e = 0; e < sc.universe_size; ++e) {
    sc.sets[e % num_sets].push_back(e);
    for (std::size_t s = 0; s < num_sets; ++s) {
      if (rng.NextBool(0.25)) {
        auto& members = sc.sets[s];
        if (std::find(members.begin(), members.end(), e) == members.end()) {
          members.push_back(e);
        }
      }
    }
  }
  const auto exact_before = ExactMinimumCover(sc);
  ASSERT_TRUE(exact_before.has_value());

  // Forward: build TDMD, then reduce back (excluding the sink vertex) and
  // re-solve.  Minimum cover size must be preserved.
  const TdmdFeasibilityInstance tdmd = ReduceSetCoverToTdmd(sc);
  SetCoverInstance back = ReduceTdmdToSetCover(tdmd.graph, tdmd.flows);
  back.sets.resize(num_sets);
  const auto exact_after = ExactMinimumCover(back);
  ASSERT_TRUE(exact_after.has_value());
  EXPECT_EQ(exact_before->size(), exact_after->size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripEquivalence,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace tdmd::setcover
