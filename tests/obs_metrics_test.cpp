// Metrics exposition: golden Prometheus and JSON renderings for a small
// registry, plus the engine-level guarantee that Engine::Metrics exposes
// every TDMD_ENGINE_STATS_COUNTERS counter and all four latency
// histograms (iterating the same X-macro the engine does, so a counter
// added to the list can never silently go missing from the exposition).
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/dynamic.hpp"
#include "engine/engine.hpp"
#include "obs/histogram.hpp"
#include "topology/generators.hpp"
#include "traffic/flow.hpp"

namespace tdmd::obs {
namespace {

MetricsRegistry SmallRegistry() {
  MetricsRegistry registry;
  registry.AddCounter("tdmd_test_total", 5, "test counter");
  LatencyHistogram histogram;
  for (std::uint64_t v = 1; v <= 16; ++v) histogram.Record(v);
  registry.AddHistogramNs("tdmd_test_latency", histogram, "test latency");
  return registry;
}

TEST(ObsMetricsTest, PrometheusGolden) {
  std::ostringstream os;
  SmallRegistry().Render(os, MetricsFormat::kPrometheus);
  const std::string expected =
      "# HELP tdmd_test_total test counter\n"
      "# TYPE tdmd_test_total counter\n"
      "tdmd_test_total 5\n"
      "# HELP tdmd_test_latency_seconds test latency\n"
      "# TYPE tdmd_test_latency_seconds summary\n"
      "tdmd_test_latency_seconds{quantile=\"0.5\"} 0.000000008\n"
      "tdmd_test_latency_seconds{quantile=\"0.95\"} 0.000000016\n"
      "tdmd_test_latency_seconds{quantile=\"0.99\"} 0.000000016\n"
      "tdmd_test_latency_seconds_sum 0.000000136\n"
      "tdmd_test_latency_seconds_count 16\n";
  EXPECT_EQ(os.str(), expected);
}

TEST(ObsMetricsTest, JsonGolden) {
  std::ostringstream os;
  SmallRegistry().Render(os, MetricsFormat::kJson);
  const std::string expected =
      "{\n"
      "  \"counters\": {\n"
      "    \"tdmd_test_total\": 5\n"
      "  },\n"
      "  \"histograms\": {\n"
      "    \"tdmd_test_latency\": {\"count\": 16, \"sum_ns\": 136, "
      "\"min_ns\": 1, \"max_ns\": 16, \"p50_ns\": 8, \"p95_ns\": 16, "
      "\"p99_ns\": 16, \"mean_ns\": 8.500}\n"
      "  }\n"
      "}\n";
  EXPECT_EQ(os.str(), expected);
}

TEST(ObsMetricsTest, EngineMetricsExposeEveryCounterAndHistogram) {
  Rng rng(93);
  const graph::Digraph network = topology::Waxman(16, 0.5, 0.4, rng);
  engine::EngineOptions options;
  options.k = 3;
  options.synchronous = true;
  engine::Engine eng(network, options);
  core::ChurnModel churn;
  churn.arrival_count = 8;
  const traffic::FlowSet arrivals =
      core::DrawArrivals(network, churn, rng);
  (void)eng.SubmitBatch(arrivals, {});

  std::ostringstream prom_os;
  eng.DumpMetrics(prom_os, MetricsFormat::kPrometheus);
  const std::string prom = prom_os.str();
  std::ostringstream json_os;
  eng.DumpMetrics(json_os, MetricsFormat::kJson);
  const std::string json = json_os.str();

  // Iterate the same X-macro Engine::Metrics uses: presence of every
  // counter in both renderings is checked by construction, not by a
  // hand-maintained list.
#define TDMD_EXPECT_COUNTER(name)                                        \
  EXPECT_NE(prom.find("\ntdmd_engine_" #name " "), std::string::npos)    \
      << #name;                                                          \
  EXPECT_NE(json.find("\"tdmd_engine_" #name "\": "), std::string::npos) \
      << #name;
  TDMD_ENGINE_STATS_COUNTERS(TDMD_EXPECT_COUNTER)
#undef TDMD_EXPECT_COUNTER
  EXPECT_NE(json.find("\"tdmd_engine_mode\": "), std::string::npos);

  for (const char* histogram : {"tdmd_engine_patch_latency",
                                "tdmd_engine_resolve_latency",
                                "tdmd_engine_index_delta_cost",
                                "tdmd_engine_greedy_round"}) {
    const std::string quantile =
        std::string(histogram) + "_seconds{quantile=\"0.5\"}";
    EXPECT_NE(prom.find(quantile), std::string::npos) << histogram;
    const std::string json_key = std::string("\"") + histogram + "\": {";
    EXPECT_NE(json.find(json_key), std::string::npos) << histogram;
  }
  // The synchronous SubmitBatch above recorded real samples.
  const engine::EngineHistograms histograms = eng.histograms();
  EXPECT_GE(histograms.patch_ns.count(), 1u);
  EXPECT_GE(histograms.index_delta_ns.count(), 1u);
}

}  // namespace
}  // namespace tdmd::obs
