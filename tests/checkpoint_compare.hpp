#pragma once

// The one canonical "byte-identical modulo wall-clock histograms" compare
// for checkpoint tests.  Determinism asserts (replayed run == interrupted
// run) must ignore the latency-histogram section — timing samples differ
// run to run even when every placement decision is identical — and every
// test spelling its own exclusion list invites them to drift.  Route every
// byte-identity assert through SerializeDeterministic and compare the
// returned strings with EXPECT_EQ.

#include <sstream>
#include <string>

#include "engine/checkpoint.hpp"
#include "io/text_format.hpp"

namespace tdmd::test {

/// Write options for deterministic byte-comparisons: histograms excluded
/// (wall-clock), everything else — including the quality section, which is
/// deterministic under synchronous replay — kept.
inline io::EngineCheckpointWriteOptions DeterministicWriteOptions() {
  io::EngineCheckpointWriteOptions options;
  options.include_histograms = false;
  return options;
}

inline std::string SerializeDeterministic(
    const engine::EngineCheckpoint& checkpoint) {
  std::ostringstream os;
  io::WriteEngineCheckpoint(os, checkpoint, DeterministicWriteOptions());
  return os.str();
}

/// Fleet-checkpoint variant.  A template (resolved by ADL against
/// shard::WriteFleetCheckpoint) so engine-only test binaries can include
/// this header without linking tdmd_shard; instantiated only in TUs that
/// also include shard/fleet_io.hpp.
template <typename FleetCheckpointT>
std::string SerializeDeterministic(const FleetCheckpointT& checkpoint) {
  std::ostringstream os;
  WriteFleetCheckpoint(os, checkpoint, DeterministicWriteOptions());
  return os.str();
}

}  // namespace tdmd::test
