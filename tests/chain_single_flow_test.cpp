#include "core/chain_single_flow.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace tdmd::core {
namespace {

TEST(ChainDpTest, EmptyChainIsRawBandwidth) {
  const ChainPlacementResult result = PlaceChainSingleFlow(4, 5, {});
  EXPECT_DOUBLE_EQ(result.bandwidth, 20.0);
  EXPECT_TRUE(result.stage_position.empty());
}

TEST(ChainDpTest, SingleDiminisherGoesToTheSource) {
  // One 0.5x box on a 4-edge path: best at the source, cost 0.5*r*4.
  const ChainPlacementResult result = PlaceChainSingleFlow(2, 4, {0.5});
  EXPECT_DOUBLE_EQ(result.bandwidth, 4.0);
  ASSERT_EQ(result.stage_position.size(), 1u);
  EXPECT_EQ(result.stage_position[0], 0u);
}

TEST(ChainDpTest, SingleAmplifierGoesToTheDestination) {
  // A 3x amplifier should act as late as possible.
  const ChainPlacementResult result = PlaceChainSingleFlow(2, 4, {3.0});
  EXPECT_DOUBLE_EQ(result.bandwidth, 8.0);  // untouched on all 4 edges
  ASSERT_EQ(result.stage_position.size(), 1u);
  EXPECT_EQ(result.stage_position[0], 4u);
}

TEST(ChainDpTest, DiminisherThenAmplifierSplits) {
  // Chain (0.5, 3.0) in that order: diminish at the source, amplify at
  // the destination: each edge carries 0.5 r.
  const ChainPlacementResult result =
      PlaceChainSingleFlow(2, 4, {0.5, 3.0});
  EXPECT_DOUBLE_EQ(result.bandwidth, 4.0);
  EXPECT_EQ(result.stage_position[0], 0u);
  EXPECT_EQ(result.stage_position[1], 4u);
}

TEST(ChainDpTest, AmplifierThenDiminisherIsTheHardCase) {
  // Chain (4.0, 0.25) — ordered amplify *before* dedup.  Net ratio is 1,
  // so either both at the source or both at the destination keeps every
  // edge at rate r; splitting them would carry 4r in between.
  const ChainPlacementResult result =
      PlaceChainSingleFlow(3, 4, {4.0, 0.25});
  EXPECT_DOUBLE_EQ(result.bandwidth, 12.0);
  EXPECT_EQ(result.stage_position[0], result.stage_position[1]);
}

TEST(ChainDpTest, OrderConstraintRespected) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const auto edges = static_cast<std::size_t>(rng.NextInt(1, 8));
    const auto m = static_cast<std::size_t>(rng.NextInt(1, 5));
    std::vector<double> ratios;
    for (std::size_t j = 0; j < m; ++j) {
      ratios.push_back(rng.NextDouble(0.2, 2.5));
    }
    const ChainPlacementResult result =
        PlaceChainSingleFlow(rng.NextInt(1, 9), edges, ratios);
    ASSERT_EQ(result.stage_position.size(), m);
    for (std::size_t j = 1; j < m; ++j) {
      EXPECT_LE(result.stage_position[j - 1], result.stage_position[j]);
    }
    for (std::size_t q : result.stage_position) {
      EXPECT_LE(q, edges);
    }
  }
}

class ChainDpOptimality : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChainDpOptimality, MatchesBruteForce) {
  Rng rng(GetParam());
  const auto edges = static_cast<std::size_t>(rng.NextInt(1, 7));
  const auto m = static_cast<std::size_t>(rng.NextInt(1, 4));
  std::vector<double> ratios;
  for (std::size_t j = 0; j < m; ++j) {
    // Mix diminishers and amplifiers, the coupling that defeats greedy.
    ratios.push_back(rng.NextBool(0.5) ? rng.NextDouble(0.1, 1.0)
                                       : rng.NextDouble(1.0, 4.0));
  }
  const Rate rate = rng.NextInt(1, 10);
  const ChainPlacementResult dp =
      PlaceChainSingleFlow(rate, edges, ratios);
  const ChainPlacementResult brute =
      PlaceChainBruteForce(rate, edges, ratios);
  EXPECT_NEAR(dp.bandwidth, brute.bandwidth, 1e-9)
      << "edges=" << edges << " m=" << m;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChainDpOptimality,
                         ::testing::Range<std::uint64_t>(1, 41));

TEST(ChainDpTest, AllDiminishersCollapseToSource) {
  const ChainPlacementResult result =
      PlaceChainSingleFlow(8, 6, {0.9, 0.5, 0.8});
  for (std::size_t q : result.stage_position) {
    EXPECT_EQ(q, 0u);
  }
  EXPECT_DOUBLE_EQ(result.bandwidth, 8.0 * 0.9 * 0.5 * 0.8 * 6.0);
}

TEST(ChainDpTest, ZeroEdgePathCostsNothing) {
  const ChainPlacementResult result =
      PlaceChainSingleFlow(5, 0, {0.5, 2.0});
  EXPECT_DOUBLE_EQ(result.bandwidth, 0.0);
}

TEST(ChainDpDeathTest, NonPositiveInputsRejected) {
  EXPECT_DEATH(PlaceChainSingleFlow(0, 3, {0.5}), "rate");
  EXPECT_DEATH(PlaceChainSingleFlow(2, 3, {0.0}), "positive");
  EXPECT_DEATH(PlaceChainSingleFlow(2, 3, {-1.0}), "positive");
}

}  // namespace
}  // namespace tdmd::core
