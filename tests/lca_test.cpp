#include "graph/lca.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "test_util.hpp"
#include "topology/generators.hpp"

namespace tdmd::graph {
namespace {

TEST(LcaTest, PaperExamples) {
  // Section 5.2: "LCA of vertices v4 and v5 is v2 and LCA of vertices v1
  // and v6 is v1."
  Tree tree = test::PaperTree();
  LcaIndex lca(tree);
  EXPECT_EQ(lca.Query(test::kV4, test::kV5), test::kV2);
  EXPECT_EQ(lca.Query(test::kV1, test::kV6), test::kV1);
  EXPECT_EQ(lca.Query(test::kV7, test::kV8), test::kV6);
  EXPECT_EQ(lca.Query(test::kV4, test::kV8), test::kV1);
}

TEST(LcaTest, SelfAndAncestorConventions) {
  Tree tree = test::PaperTree();
  LcaIndex lca(tree);
  // "We define each vertex to be a descendant of itself."
  EXPECT_EQ(lca.Query(test::kV6, test::kV6), test::kV6);
  EXPECT_EQ(lca.Query(test::kV3, test::kV7), test::kV3);
  EXPECT_EQ(lca.Query(test::kV7, test::kV3), test::kV3);
}

TEST(LcaTest, QueryIsSymmetric) {
  Tree tree = test::PaperTree();
  LcaIndex lca(tree);
  for (VertexId u = 0; u < tree.num_vertices(); ++u) {
    for (VertexId v = 0; v < tree.num_vertices(); ++v) {
      EXPECT_EQ(lca.Query(u, v), lca.Query(v, u));
    }
  }
}

TEST(LcaTest, DistanceOnPaperTree) {
  Tree tree = test::PaperTree();
  LcaIndex lca(tree);
  EXPECT_EQ(lca.Distance(test::kV4, test::kV5), 2);
  EXPECT_EQ(lca.Distance(test::kV4, test::kV7), 5);
  EXPECT_EQ(lca.Distance(test::kV1, test::kV1), 0);
  EXPECT_EQ(lca.Distance(test::kV1, test::kV7), 3);
}

TEST(LcaTest, SingleVertexTree) {
  Tree tree(std::vector<VertexId>{kInvalidVertex});
  LcaIndex lca(tree);
  EXPECT_EQ(lca.Query(0, 0), 0);
  EXPECT_EQ(lca.Distance(0, 0), 0);
}

TEST(LcaTest, DeepChainTree) {
  // Path tree 0 <- 1 <- 2 <- ... <- 63.
  std::vector<VertexId> parent(64);
  parent[0] = kInvalidVertex;
  for (VertexId v = 1; v < 64; ++v) parent[static_cast<std::size_t>(v)] =
      v - 1;
  Tree tree(std::move(parent));
  LcaIndex lca(tree);
  EXPECT_EQ(lca.Query(63, 10), 10);
  EXPECT_EQ(lca.Query(5, 40), 5);
  EXPECT_EQ(lca.Distance(63, 0), 63);
}

class LcaMatchesNaive : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LcaMatchesNaive, OnRandomTrees) {
  Rng rng(GetParam());
  const auto n = static_cast<VertexId>(rng.NextInt(2, 120));
  Tree tree = topology::RandomTree(n, rng);
  LcaIndex lca(tree);
  for (int trial = 0; trial < 300; ++trial) {
    const auto u = static_cast<VertexId>(
        rng.NextBounded(static_cast<std::uint64_t>(n)));
    const auto v = static_cast<VertexId>(
        rng.NextBounded(static_cast<std::uint64_t>(n)));
    ASSERT_EQ(lca.Query(u, v), NaiveLca(tree, u, v))
        << "u=" << u << " v=" << v << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LcaMatchesNaive,
                         ::testing::Values(101, 202, 303, 404, 505, 606,
                                           707, 808));

TEST(LcaTest, BoundedBranchingTrees) {
  Rng rng(999);
  for (VertexId max_children : {1, 2, 5}) {
    Tree tree = topology::RandomBoundedTree(50, max_children, rng);
    LcaIndex lca(tree);
    for (int trial = 0; trial < 100; ++trial) {
      const auto u = static_cast<VertexId>(rng.NextBounded(50));
      const auto v = static_cast<VertexId>(rng.NextBounded(50));
      ASSERT_EQ(lca.Query(u, v), NaiveLca(tree, u, v));
    }
  }
}

}  // namespace
}  // namespace tdmd::graph
