#include "io/text_format.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/objective.hpp"
#include "test_util.hpp"

namespace tdmd::io {
namespace {

TEST(DigraphRoundTrip, PreservesStructure) {
  const graph::Tree tree = test::PaperTree();
  const graph::Digraph original = tree.ToDigraph();
  std::stringstream buffer;
  WriteDigraph(buffer, original);
  Parsed<graph::Digraph> parsed = ReadDigraph(buffer);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(parsed.value->num_vertices(), original.num_vertices());
  EXPECT_EQ(parsed.value->num_arcs(), original.num_arcs());
  for (EdgeId e = 0; e < original.num_arcs(); ++e) {
    EXPECT_EQ(parsed.value->arc(e).tail, original.arc(e).tail);
    EXPECT_EQ(parsed.value->arc(e).head, original.arc(e).head);
  }
}

TEST(TreeRoundTrip, PreservesParents) {
  const graph::Tree original = test::PaperTree();
  std::stringstream buffer;
  WriteTree(buffer, original);
  Parsed<graph::Tree> parsed = ReadTree(buffer);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(parsed.value->num_vertices(), original.num_vertices());
  EXPECT_EQ(parsed.value->root(), original.root());
  for (VertexId v = 0; v < original.num_vertices(); ++v) {
    EXPECT_EQ(parsed.value->Parent(v), original.Parent(v));
  }
}

TEST(FlowsRoundTrip, PreservesRatesAndPaths) {
  const graph::Tree tree = test::PaperTree();
  const traffic::FlowSet original = test::PaperFlows(tree);
  std::stringstream buffer;
  WriteFlows(buffer, original);
  Parsed<traffic::FlowSet> parsed = ReadFlows(buffer);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  ASSERT_EQ(parsed.value->size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ((*parsed.value)[i].rate, original[i].rate);
    EXPECT_EQ((*parsed.value)[i].src, original[i].src);
    EXPECT_EQ((*parsed.value)[i].dst, original[i].dst);
    EXPECT_EQ((*parsed.value)[i].path.vertices, original[i].path.vertices);
  }
}

TEST(InstanceRoundTrip, PreservesEverythingObservable) {
  const core::Instance original = test::PaperInstance();
  std::stringstream buffer;
  WriteInstance(buffer, original);
  Parsed<core::Instance> parsed = ReadInstance(buffer);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(parsed.value->num_vertices(), original.num_vertices());
  EXPECT_EQ(parsed.value->num_flows(), original.num_flows());
  EXPECT_DOUBLE_EQ(parsed.value->lambda(), original.lambda());
  EXPECT_DOUBLE_EQ(parsed.value->UnprocessedBandwidth(),
                   original.UnprocessedBandwidth());
}

TEST(InstanceRoundTrip, RandomGeneralInstances) {
  for (std::uint64_t seed : {3ULL, 5ULL, 7ULL}) {
    Rng rng(seed);
    const core::Instance original =
        test::MakeRandomGeneralCase(18, 0.35, 12, rng);
    std::stringstream buffer;
    WriteInstance(buffer, original);
    Parsed<core::Instance> parsed = ReadInstance(buffer);
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    // The objective under any deployment must agree.
    Rng probe(seed + 1);
    for (int trial = 0; trial < 5; ++trial) {
      core::Deployment plan(original.num_vertices());
      for (VertexId v = 0; v < original.num_vertices(); ++v) {
        if (probe.NextBool(0.3)) plan.Add(v);
      }
      EXPECT_NEAR(core::EvaluateBandwidth(original, plan),
                  core::EvaluateBandwidth(*parsed.value, plan), 1e-12);
    }
  }
}

TEST(DeploymentRoundTrip, PreservesBoxes) {
  core::Deployment original(8, {1, 5, 7});
  std::stringstream buffer;
  WriteDeployment(buffer, original);
  Parsed<core::Deployment> parsed = ReadDeployment(buffer, 8);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(parsed.value->SortedVertices(), original.SortedVertices());
}

TEST(CommentsAndBlanks, AreIgnored) {
  std::stringstream buffer(
      "# a comment\n\n"
      "digraph 2  # trailing comment\n"
      "\n"
      "arc 0 1\n");
  Parsed<graph::Digraph> parsed = ReadDigraph(buffer);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(parsed.value->num_arcs(), 1);
}

TEST(ParseErrors, ReportLineNumbers) {
  std::stringstream bad_arc("digraph 2\narc 0 5\n");
  Parsed<graph::Digraph> parsed = ReadDigraph(bad_arc);
  EXPECT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error.find("line 2"), std::string::npos);
}

TEST(ParseErrors, BadHeaderRejected) {
  std::stringstream wrong("tdmd-instance v2\n");
  EXPECT_FALSE(ReadInstance(wrong).ok());
  std::stringstream missing("lambda 0.5\n");
  EXPECT_FALSE(ReadInstance(missing).ok());
}

TEST(ParseErrors, LambdaOutOfRange) {
  std::stringstream bad(
      "tdmd-instance v1\nlambda 1.5\ndigraph 1\nflows 0\n");
  Parsed<core::Instance> parsed = ReadInstance(bad);
  EXPECT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error.find("lambda"), std::string::npos);
}

TEST(ParseErrors, FlowPathMustExistInGraph) {
  std::stringstream bad(
      "tdmd-instance v1\nlambda 0.5\ndigraph 3\narc 0 1\n"
      "flows 1\nflow 2 0 2\n");  // arc 0 -> 2 does not exist
  Parsed<core::Instance> parsed = ReadInstance(bad);
  EXPECT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error.find("paths"), std::string::npos);
}

TEST(ParseErrors, TreeValidation) {
  std::stringstream two_roots("tree 3\nparent 1 0\n");  // vertex 2 rootless
  EXPECT_FALSE(ReadTree(two_roots).ok());
  std::stringstream cycle("tree 3\nparent 1 2\nparent 2 1\n");
  EXPECT_FALSE(ReadTree(cycle).ok());
  std::stringstream duplicate("tree 2\nparent 1 0\nparent 1 0\n");
  EXPECT_FALSE(ReadTree(duplicate).ok());
}

TEST(ParseErrors, DeploymentValidation) {
  std::stringstream out_of_range("deployment\nbox 9\n");
  EXPECT_FALSE(ReadDeployment(out_of_range, 4).ok());
  std::stringstream duplicate("deployment\nbox 1\nbox 1\n");
  EXPECT_FALSE(ReadDeployment(duplicate, 4).ok());
}

TEST(ParseErrors, NonNumericTokens) {
  std::stringstream bad("digraph two\n");
  EXPECT_FALSE(ReadDigraph(bad).ok());
  std::stringstream bad_rate("flows 1\nflow -3 0 1\n");
  EXPECT_FALSE(ReadFlows(bad_rate).ok());
}

TEST(FileHelpers, MissingFileGivesPathInError) {
  Parsed<core::Instance> parsed =
      ReadInstanceFile("/nonexistent/path/file.tdmd");
  EXPECT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error.find("/nonexistent/path"), std::string::npos);
}

TEST(FileHelpers, WriteAndReadBack) {
  const std::string path = ::testing::TempDir() + "/io_test_instance.tdmd";
  const core::Instance original = test::PaperInstance();
  ASSERT_TRUE(WriteFile(
      path, [&](std::ostream& os) { WriteInstance(os, original); }));
  Parsed<core::Instance> parsed = ReadInstanceFile(path);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(parsed.value->num_flows(), 4);
}

}  // namespace
}  // namespace tdmd::io
