#include "core/hat.hpp"

#include <gtest/gtest.h>

#include "core/dp_tree.hpp"
#include "core/objective.hpp"
#include "test_util.hpp"
#include "traffic/generator.hpp"

namespace tdmd::core {
namespace {

TEST(HatGolden, BudgetAtLeastLeavesKeepsLeafPlan) {
  // Section 5.2: "If k >= 4 ... the deployment plan returned by Alg. HAT
  // is P = {v4, v5, v7, v8}."
  Instance instance = test::PaperInstance();
  const graph::Tree tree = test::PaperTree();
  for (std::size_t k : {4u, 5u, 10u}) {
    PlacementResult result = Hat(instance, tree, k);
    EXPECT_EQ(result.deployment.SortedVertices(),
              (std::vector<VertexId>{test::kV4, test::kV5, test::kV7,
                                     test::kV8}));
    EXPECT_DOUBLE_EQ(result.bandwidth, 12.0);
  }
}

TEST(HatGolden, KThreeMergesTheCheapestPair) {
  // "If k = 3 ... Δb(4,5) has the minimum value, 1.5 ... the plan is
  // {v2, v7, v8}."
  Instance instance = test::PaperInstance();
  const graph::Tree tree = test::PaperTree();
  PlacementResult result = Hat(instance, tree, 3);
  EXPECT_EQ(result.deployment.SortedVertices(),
            (std::vector<VertexId>{test::kV2, test::kV7, test::kV8}));
  EXPECT_DOUBLE_EQ(result.bandwidth, 13.5);
}

TEST(HatGolden, KTwoReachesEitherOptimalPlan) {
  // "If we select to delete v7 and v8 ... P = {v2, v6}; otherwise
  // P = {v1, v7}."  Both cost 16.5.
  Instance instance = test::PaperInstance();
  const graph::Tree tree = test::PaperTree();
  PlacementResult result = Hat(instance, tree, 2);
  const auto plan = result.deployment.SortedVertices();
  EXPECT_TRUE(plan == (std::vector<VertexId>{test::kV2, test::kV6}) ||
              plan == (std::vector<VertexId>{test::kV1, test::kV7}))
      << "got " << result.deployment.ToString();
  EXPECT_DOUBLE_EQ(result.bandwidth, 16.5);
}

TEST(HatGolden, KOneCollapsesToRoot) {
  // "Similarly, P = {v1} when k = 1."
  Instance instance = test::PaperInstance();
  const graph::Tree tree = test::PaperTree();
  PlacementResult result = Hat(instance, tree, 1);
  EXPECT_EQ(result.deployment.SortedVertices(),
            (std::vector<VertexId>{test::kV1}));
  EXPECT_DOUBLE_EQ(result.bandwidth, 24.0);
}

TEST(HatGolden, DeltaBValuesFromTheWalkthrough) {
  // Δb(4,5) = 1.5, Δb(7,8) = 3, Δb(4,7) = 9.5 against the initial
  // all-leaves plan.
  Instance instance = test::PaperInstance();
  const graph::Tree tree = test::PaperTree();
  Deployment leaves(instance.num_vertices(),
                    {test::kV4, test::kV5, test::kV7, test::kV8});
  const Bandwidth base = EvaluateBandwidth(instance, leaves);
  ASSERT_DOUBLE_EQ(base, 12.0);

  auto merged_cost = [&](VertexId a, VertexId b, VertexId lca) {
    Deployment plan = leaves;
    plan.Remove(a);
    plan.Remove(b);
    plan.Add(lca);
    return EvaluateBandwidth(instance, plan) - base;
  };
  EXPECT_DOUBLE_EQ(merged_cost(test::kV4, test::kV5, test::kV2), 1.5);
  EXPECT_DOUBLE_EQ(merged_cost(test::kV7, test::kV8, test::kV6), 3.0);
  EXPECT_DOUBLE_EQ(merged_cost(test::kV4, test::kV7, test::kV1), 9.5);
}

TEST(HatTest, NaiveRescanMatchesHeapVersion) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const auto size = static_cast<VertexId>(rng.NextInt(6, 30));
    const double lambda = rng.NextDouble(0.0, 1.0);
    const test::RandomTreeCase c =
        test::MakeRandomTreeCase(size, lambda, rng);
    const std::size_t k =
        1 + static_cast<std::size_t>(rng.NextBounded(4));
    HatOptions heap_opts;
    heap_opts.k = k;
    HatOptions naive_opts;
    naive_opts.k = k;
    naive_opts.naive_rescan = true;
    const PlacementResult a = Hat(c.instance, c.tree, heap_opts);
    const PlacementResult b = Hat(c.instance, c.tree, naive_opts);
    // Both are greedy merge policies; tie-breaking can differ, but the
    // achieved bandwidth of equal-quality merges must match.
    EXPECT_NEAR(a.bandwidth, b.bandwidth, 1e-6)
        << "size=" << size << " k=" << k;
  }
}

TEST(HatTest, EmptyFlowSetTriviallyFeasible) {
  const graph::Tree tree = test::PaperTree();
  Instance instance = MakeTreeInstance(tree, {}, 0.5);
  PlacementResult result = Hat(instance, tree, 2);
  EXPECT_TRUE(result.feasible);
  EXPECT_TRUE(result.deployment.empty());
}

TEST(HatTest, SilentLeavesGetNoMiddlebox) {
  // Only v7 sources a flow: HAT should start from {v7}, not all leaves.
  const graph::Tree tree = test::PaperTree();
  traffic::FlowSet flows;
  traffic::Flow f;
  f.src = test::kV7;
  f.dst = tree.root();
  f.rate = 5;
  f.path.vertices = tree.PathToRoot(test::kV7);
  flows.push_back(f);
  Instance instance = MakeTreeInstance(tree, flows, 0.5);
  PlacementResult result = Hat(instance, tree, 3);
  EXPECT_EQ(result.deployment.SortedVertices(),
            (std::vector<VertexId>{test::kV7}));
  EXPECT_DOUBLE_EQ(result.bandwidth, 7.5);
}

class HatProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HatProperties, FeasibleWithinBudgetAndBounded) {
  Rng rng(GetParam());
  const auto size = static_cast<VertexId>(rng.NextInt(5, 40));
  const double lambda = rng.NextDouble(0.0, 1.0);
  const test::RandomTreeCase c = test::MakeRandomTreeCase(size, lambda, rng);
  for (std::size_t k : {1u, 2u, 3u, 6u}) {
    const PlacementResult hat = Hat(c.instance, c.tree, k);
    EXPECT_TRUE(hat.feasible);
    EXPECT_LE(hat.deployment.size(), k)
        << "HAT exceeded budget: " << hat.deployment.size() << " > " << k;
    // Sandwich: optimal <= HAT <= unprocessed.
    const PlacementResult dp = DpTree(c.instance, c.tree, k);
    EXPECT_GE(hat.bandwidth + 1e-9, dp.bandwidth)
        << "HAT beat the optimal DP?!";
    EXPECT_LE(hat.bandwidth, c.instance.UnprocessedBandwidth() + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HatProperties,
                         ::testing::Range<std::uint64_t>(1, 31));

TEST(HatTest, MatchesDpWhenBudgetEqualsSourceLeaves) {
  // With k = #source leaves both HAT (no merges) and DP (all sources)
  // reach the lambda * sum r|p| floor.
  Rng rng(123);
  const test::RandomTreeCase c = test::MakeRandomTreeCase(25, 0.5, rng);
  std::size_t source_leaves = 0;
  std::vector<char> seen(static_cast<std::size_t>(c.tree.num_vertices()),
                         0);
  for (FlowId f = 0; f < c.instance.num_flows(); ++f) {
    const VertexId src = c.instance.flow(f).src;
    if (!seen[static_cast<std::size_t>(src)]) {
      seen[static_cast<std::size_t>(src)] = 1;
      ++source_leaves;
    }
  }
  const PlacementResult hat = Hat(c.instance, c.tree, source_leaves);
  const PlacementResult dp = DpTree(c.instance, c.tree, source_leaves);
  EXPECT_NEAR(hat.bandwidth, dp.bandwidth, 1e-9);
  EXPECT_NEAR(hat.bandwidth, c.instance.MinimumPossibleBandwidth(), 1e-9);
}

}  // namespace
}  // namespace tdmd::core
