// End-to-end integration: Ark-like topology -> extraction -> CAIDA-like
// workload -> all five algorithms -> cross-checks and orderings, i.e. one
// full evaluation pipeline per seed.
#include <gtest/gtest.h>

#include "core/tdmd.hpp"
#include "experiment/timer.hpp"
#include "sim/link_sim.hpp"
#include "test_util.hpp"
#include "topology/ark.hpp"
#include "topology/mutate.hpp"
#include "traffic/generator.hpp"

namespace tdmd {
namespace {

struct Pipeline {
  graph::Tree tree;
  core::Instance tree_instance;
  core::Instance general_instance;

  static Pipeline Build(std::uint64_t seed, double lambda) {
    Rng rng(seed);
    topology::ArkParams ark_params;
    ark_params.num_monitors = 90;
    const topology::ArkTopology ark =
        topology::GenerateArk(ark_params, rng);

    graph::Tree tree = topology::ExtractTreeSubgraph(ark, 22, rng);
    traffic::WorkloadParams tree_params;
    tree_params.flow_density = 0.5;
    tree_params.link_capacity = 60.0;
    tree_params.rates.max_rate = 12;
    traffic::FlowSet tree_flows = traffic::MergeSameSourceFlows(
        traffic::GenerateTreeWorkload(tree, tree_params, rng));
    core::Instance tree_instance =
        core::MakeTreeInstance(tree, tree_flows, lambda);

    graph::Digraph general = topology::ExtractGeneralSubgraph(ark, 30, rng);
    traffic::WorkloadParams gen_params;
    gen_params.flow_density = 0.5;
    gen_params.link_capacity = 30.0;
    traffic::FlowSet gen_flows =
        traffic::GenerateGeneralWorkload(general, {0}, gen_params, rng);
    core::Instance general_instance(std::move(general),
                                    std::move(gen_flows), lambda);

    return Pipeline{std::move(tree), std::move(tree_instance),
                    std::move(general_instance)};
  }
};

class EndToEnd : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EndToEnd, TreePipelineOrderingsHold) {
  Pipeline p = Pipeline::Build(GetParam(), 0.5);
  constexpr std::size_t k = 8;

  const core::PlacementResult dp = core::DpTree(p.tree_instance, p.tree, k);
  const core::PlacementResult hat = core::Hat(p.tree_instance, p.tree, k);
  core::GtpOptions gtp_options;
  gtp_options.max_middleboxes = k;
  gtp_options.feasibility_aware = true;
  const core::PlacementResult gtp = core::Gtp(p.tree_instance, gtp_options);
  const core::PlacementResult best_effort =
      core::BestEffort(p.tree_instance, k);
  Rng rng(GetParam() + 999);
  core::RandomPlacementOptions random_options;
  random_options.k = k;
  const core::PlacementResult random =
      core::RandomPlacement(p.tree_instance, random_options, rng);

  ASSERT_TRUE(dp.feasible);
  // DP is optimal: lower-bounds every feasible plan.
  for (const auto* result : {&hat, &gtp, &best_effort, &random}) {
    if (result->feasible) {
      EXPECT_GE(result->bandwidth + 1e-6, dp.bandwidth);
    }
  }
  // Everything sits inside the theoretical sandwich.
  for (const auto* result : {&dp, &hat, &gtp}) {
    EXPECT_GE(result->bandwidth + 1e-6,
              p.tree_instance.MinimumPossibleBandwidth());
    EXPECT_LE(result->bandwidth,
              p.tree_instance.UnprocessedBandwidth() + 1e-6);
  }
  // The closed form matches the link-level simulation for every plan.
  for (const auto* result : {&dp, &hat, &gtp, &best_effort, &random}) {
    const sim::LinkLoadReport report =
        sim::SimulateLinkLoads(p.tree_instance, result->deployment);
    EXPECT_NEAR(report.total,
                core::EvaluateBandwidth(p.tree_instance,
                                        result->deployment),
                1e-6);
  }
}

TEST_P(EndToEnd, GeneralPipelineGtpBeatsBaselinesUsually) {
  Pipeline p = Pipeline::Build(GetParam(), 0.5);
  constexpr std::size_t k = 10;

  core::GtpOptions gtp_options;
  gtp_options.max_middleboxes = k;
  gtp_options.feasibility_aware = true;
  const core::PlacementResult gtp =
      core::Gtp(p.general_instance, gtp_options);
  const core::PlacementResult best_effort =
      core::BestEffort(p.general_instance, k);
  EXPECT_LE(gtp.deployment.size(), k);
  EXPECT_LE(best_effort.deployment.size(), k);
  // GTP re-allocates flows to later, source-nearer middleboxes, so with
  // the same budget it never does worse than frozen-allocation
  // best-effort.
  EXPECT_LE(gtp.bandwidth, best_effort.bandwidth + 1e-6);
}

TEST_P(EndToEnd, LambdaMonotonicity) {
  // A stronger diminisher (smaller lambda) can only help.
  Pipeline strong = Pipeline::Build(GetParam(), 0.1);
  Pipeline weak = Pipeline::Build(GetParam(), 0.9);
  const core::PlacementResult dp_strong =
      core::DpTree(strong.tree_instance, strong.tree, 8);
  const core::PlacementResult dp_weak =
      core::DpTree(weak.tree_instance, weak.tree, 8);
  // Same seed -> same topology and flows, different lambda only.
  EXPECT_LE(dp_strong.bandwidth, dp_weak.bandwidth + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EndToEnd,
                         ::testing::Values(11, 22, 33, 44, 55));

TEST(IntegrationTest, SizeSweepStaysHealthy) {
  // Miniature of Figs. 12/16: resize topologies and re-run GTP.
  Rng rng(7);
  topology::ArkParams params;
  params.num_monitors = 80;
  const topology::ArkTopology ark = topology::GenerateArk(params, rng);
  graph::Digraph general = topology::ExtractGeneralSubgraph(ark, 20, rng);
  for (VertexId size : {12, 20, 28, 36}) {
    graph::Digraph resized = topology::ResizeGeneral(general, size, rng);
    traffic::WorkloadParams workload;
    workload.flow_density = 0.4;
    workload.link_capacity = 20.0;
    traffic::FlowSet flows =
        traffic::GenerateGeneralWorkload(resized, {0}, workload, rng);
    core::Instance instance(std::move(resized), std::move(flows), 0.5);
    const core::PlacementResult gtp = core::Gtp(instance);
    EXPECT_TRUE(gtp.feasible) << "size " << size;
  }
}

TEST(IntegrationTest, DpScalesOnFatTree) {
  // DC-style topology from the paper's motivation (Fat-tree/BCube cites).
  const graph::Tree tree = topology::FatTreeAggregation(4, 2, 2);
  Rng rng(3);
  traffic::WorkloadParams params;
  params.flow_density = 0.4;
  params.link_capacity = 30.0;
  params.rates.max_rate = 8;
  const traffic::FlowSet flows = traffic::MergeSameSourceFlows(
      traffic::GenerateTreeWorkload(tree, params, rng));
  core::Instance instance = core::MakeTreeInstance(tree, flows, 0.5);
  experiment::Timer timer;
  const core::PlacementResult dp = core::DpTree(instance, tree, 6);
  EXPECT_TRUE(dp.feasible);
  EXPECT_LT(timer.ElapsedSeconds(), 10.0);
  const core::PlacementResult hat = core::Hat(instance, tree, 6);
  EXPECT_GE(hat.bandwidth + 1e-6, dp.bandwidth);
}

}  // namespace
}  // namespace tdmd
