#include "faults/faults.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace tdmd::faults {
namespace {

FaultSpec ThrowHeavySpec(std::uint64_t seed) {
  SiteSpec site;
  site.throw_probability = 0.3;
  site.delay_probability = 0.1;
  site.cancel_probability = 0.2;
  return FaultSpec::Uniform(seed, site);
}

TEST(FaultsTest, DecideIsAPureFunctionOfSeedSiteOrdinal) {
  const FaultSpec spec = ThrowHeavySpec(42);
  for (std::uint64_t ordinal = 0; ordinal < 200; ++ordinal) {
    for (FaultSite site : {FaultSite::kPoolTask, FaultSite::kIndexDelta,
                           FaultSite::kGreedyRound}) {
      EXPECT_EQ(FaultInjector::Decide(spec, site, ordinal),
                FaultInjector::Decide(spec, site, ordinal));
    }
  }
}

TEST(FaultsTest, DifferentSeedsProduceDifferentSequences) {
  const FaultSpec a = ThrowHeavySpec(1);
  const FaultSpec b = ThrowHeavySpec(2);
  bool any_difference = false;
  for (std::uint64_t ordinal = 0; ordinal < 200 && !any_difference;
       ++ordinal) {
    any_difference = FaultInjector::Decide(a, FaultSite::kIndexDelta,
                                           ordinal) !=
                     FaultInjector::Decide(b, FaultSite::kIndexDelta,
                                           ordinal);
  }
  EXPECT_TRUE(any_difference);
}

TEST(FaultsTest, ZeroProbabilitiesNeverInject) {
  FaultInjector injector(FaultSpec{});  // all rates zero
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(injector.MaybeInject(FaultSite::kIndexDelta));
  }
  const FaultCounters counters = injector.counters();
  EXPECT_EQ(counters.visits, 100u);
  EXPECT_EQ(counters.throws_injected, 0u);
  EXPECT_EQ(counters.delays_injected, 0u);
  EXPECT_EQ(counters.cancels_injected, 0u);
  EXPECT_TRUE(injector.Events().empty());
}

TEST(FaultsTest, InjectorExecutesTheDecidedFault) {
  const FaultSpec spec = ThrowHeavySpec(7);
  FaultInjector injector(spec);
  for (std::uint64_t ordinal = 0; ordinal < 100; ++ordinal) {
    const FaultKind expected =
        FaultInjector::Decide(spec, FaultSite::kGreedyRound, ordinal);
    if (expected == FaultKind::kThrow) {
      EXPECT_THROW(injector.MaybeInject(FaultSite::kGreedyRound),
                   FaultInjectedError);
    } else {
      EXPECT_EQ(injector.MaybeInject(FaultSite::kGreedyRound),
                expected == FaultKind::kCancel);
    }
  }
}

TEST(FaultsTest, EventLogReplaysIdenticallyAcrossRuns) {
  const auto run = [](std::uint64_t seed) {
    FaultInjector injector(ThrowHeavySpec(seed));
    for (int i = 0; i < 150; ++i) {
      try {
        injector.MaybeInject(FaultSite::kIndexDelta);
      } catch (const FaultInjectedError&) {
      }
    }
    return injector.Events();
  };
  const std::vector<FaultEvent> first = run(99);
  const std::vector<FaultEvent> second = run(99);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(FaultsTest, DisarmedVisitsConsumeNoOrdinals) {
  const FaultSpec spec = ThrowHeavySpec(13);
  // Reference run: 50 armed visits straight through.
  FaultInjector reference(spec);
  for (int i = 0; i < 50; ++i) {
    try {
      reference.MaybeInject(FaultSite::kPoolTask);
    } catch (const FaultInjectedError&) {
    }
  }
  // Same 50 armed visits with a disarmed window in the middle.
  FaultInjector windowed(spec);
  for (int i = 0; i < 25; ++i) {
    try {
      windowed.MaybeInject(FaultSite::kPoolTask);
    } catch (const FaultInjectedError&) {
    }
  }
  windowed.Disarm();
  for (int i = 0; i < 40; ++i) {
    EXPECT_FALSE(windowed.MaybeInject(FaultSite::kPoolTask));
  }
  windowed.Arm();
  for (int i = 0; i < 25; ++i) {
    try {
      windowed.MaybeInject(FaultSite::kPoolTask);
    } catch (const FaultInjectedError&) {
    }
  }
  EXPECT_EQ(reference.Events(), windowed.Events());
  EXPECT_EQ(windowed.counters().visits, 50u);  // armed visits only
}

TEST(FaultsTest, SiteNamesAreStable) {
  EXPECT_STREQ(FaultSiteName(FaultSite::kPoolTask), "pool-task");
  EXPECT_STREQ(FaultSiteName(FaultSite::kIndexDelta), "index-delta");
  EXPECT_STREQ(FaultSiteName(FaultSite::kGreedyRound), "greedy-round");
  EXPECT_STREQ(FaultKindName(FaultKind::kThrow), "throw");
  EXPECT_STREQ(FaultKindName(FaultKind::kDelay), "delay");
  EXPECT_STREQ(FaultKindName(FaultKind::kCancel), "cancel");
}

}  // namespace
}  // namespace tdmd::faults
