#include "core/baselines.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/dp_tree.hpp"
#include "core/gtp.hpp"
#include "core/objective.hpp"
#include "test_util.hpp"

namespace tdmd::core {
namespace {

TEST(RandomPlacementTest, RespectsBudgetAndRetriesToFeasibility) {
  Rng rng(1);
  Instance instance = test::PaperInstance();
  RandomPlacementOptions options;
  options.k = 2;
  for (int trial = 0; trial < 20; ++trial) {
    PlacementResult result = RandomPlacement(instance, options, rng);
    EXPECT_EQ(result.deployment.size(), 2u);
    EXPECT_TRUE(result.feasible);
    EXPECT_NEAR(result.bandwidth,
                EvaluateBandwidth(instance, result.deployment), 1e-9);
  }
}

TEST(RandomPlacementTest, KOneOnPaperTreeMustPickRoot) {
  // The root is the only feasible single placement, so the retry loop (or
  // the greedy-cover fallback) must land there.
  Rng rng(2);
  Instance instance = test::PaperInstance();
  RandomPlacementOptions options;
  options.k = 1;
  PlacementResult result = RandomPlacement(instance, options, rng);
  EXPECT_TRUE(result.feasible);
  EXPECT_EQ(result.deployment.SortedVertices(),
            (std::vector<VertexId>{test::kV1}));
}

TEST(RandomPlacementTest, DifferentSeedsProduceDifferentPlans) {
  Instance instance = test::PaperInstance();
  RandomPlacementOptions options;
  options.k = 3;
  std::set<std::vector<VertexId>> plans;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    plans.insert(RandomPlacement(instance, options, rng)
                     .deployment.SortedVertices());
  }
  EXPECT_GT(plans.size(), 1u);
}

TEST(RandomPlacementTest, KLargerThanVerticesClamps) {
  Rng rng(3);
  Instance instance = test::PaperInstance();
  RandomPlacementOptions options;
  options.k = 100;
  PlacementResult result = RandomPlacement(instance, options, rng);
  EXPECT_EQ(result.deployment.size(), 8u);
  EXPECT_TRUE(result.feasible);
}

TEST(BestEffortTest, FirstPickIsTheBiggestImmediateReduction) {
  Instance instance = test::PaperInstance();
  // Budget 4 leaves room for coverage, so the max-gain vertex v7
  // (gain 7.5 from f3) passes the lookahead and goes first.
  PlacementResult result = BestEffort(instance, 4);
  ASSERT_FALSE(result.deployment.vertices().empty());
  EXPECT_EQ(result.deployment.vertices().front(), test::kV7);
}

TEST(BestEffortTest, KOneFeasibilityLookaheadPicksRoot) {
  // Fig. 9's k = 1 remark: only one feasible plan exists on a tree, so
  // every (feasible) algorithm coincides there.
  Instance instance = test::PaperInstance();
  PlacementResult result = BestEffort(instance, 1);
  EXPECT_TRUE(result.feasible);
  EXPECT_EQ(result.deployment.SortedVertices(),
            (std::vector<VertexId>{test::kV1}));
  EXPECT_DOUBLE_EQ(result.bandwidth, 24.0);
}

TEST(BestEffortTest, MyopicVariantIgnoresCoverage) {
  Instance instance = test::PaperInstance();
  PlacementResult result =
      BestEffort(instance, 1, /*feasibility_aware=*/false);
  ASSERT_EQ(result.deployment.size(), 1u);
  EXPECT_EQ(result.deployment.vertices().front(), test::kV7);
  EXPECT_FALSE(result.feasible);  // v7 alone serves only f3
}

TEST(BestEffortTest, FrozenAllocationNeverUpgrades) {
  // Deploy order on the paper tree: v7 (7.5), then v4 (2), v8 (1.5),
  // v5 (1).  All end at sources here, so bandwidth reaches the floor.
  Instance instance = test::PaperInstance();
  PlacementResult result = BestEffort(instance, 4);
  EXPECT_TRUE(result.feasible);
  EXPECT_DOUBLE_EQ(result.bandwidth, 12.0);
}

TEST(BestEffortTest, CanBeWorseThanGtpOnUpgrades) {
  // Construct a path topology where best-effort's frozen allocation
  // hurts: flow from leaf a through b; a second flow only through b.
  // Best-effort first deploys where joint gain is max (b), freezing flow
  // 1 at a mid-path box; GTP would later re-serve flow 1 at its source.
  graph::DigraphBuilder builder(4);
  builder.AddArc(1, 2);  // path: 1 -> 2 -> 0 and 3 -> 2 -> 0
  builder.AddArc(2, 0);
  builder.AddArc(3, 2);
  traffic::FlowSet flows;
  traffic::Flow f1;
  f1.src = 1;
  f1.dst = 0;
  f1.rate = 3;
  f1.path.vertices = {1, 2, 0};
  traffic::Flow f2;
  f2.src = 3;
  f2.dst = 0;
  f2.rate = 3;
  f2.path.vertices = {3, 2, 0};
  flows = {f1, f2};
  Instance instance(builder.Build(), flows, 0.5);

  const PlacementResult best_effort = BestEffort(instance, 3);
  GtpOptions options;
  options.max_middleboxes = 3;
  const PlacementResult gtp = Gtp(instance, options);
  EXPECT_LE(gtp.bandwidth, best_effort.bandwidth + 1e-9);
}

TEST(BestEffortTest, StopsWhenSaturated) {
  Instance instance = test::PaperInstance();
  PlacementResult result = BestEffort(instance, 8);
  // 4 sources cover everything; further boxes are refused.
  EXPECT_LE(result.deployment.size(), 5u);
  EXPECT_DOUBLE_EQ(result.bandwidth, 12.0);
}

TEST(BestEffortTest, FeasibleAtEveryBudgetOnTrees) {
  // With the coverage lookahead, trees always admit a feasible pick
  // (worst case: the root).
  Instance instance = test::PaperInstance();
  for (std::size_t k = 1; k <= 4; ++k) {
    EXPECT_TRUE(BestEffort(instance, k).feasible) << "k=" << k;
  }
}

class BaselineOrdering : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BaselineOrdering, DpLowerBoundsHeuristicsOnTrees) {
  // The paper's headline ordering: DP <= {GTP, HAT} <= Best-effort-ish
  // <= Random (in expectation).  The guaranteed part is DP <= everything
  // feasible; assert that, plus basic sanity of each baseline.
  Rng rng(GetParam());
  const auto size = static_cast<VertexId>(rng.NextInt(6, 30));
  const double lambda = rng.NextDouble(0.0, 0.9);
  const test::RandomTreeCase c = test::MakeRandomTreeCase(size, lambda, rng);
  const std::size_t k = 1 + static_cast<std::size_t>(rng.NextBounded(5));

  const PlacementResult dp = DpTree(c.instance, c.tree, k);
  ASSERT_TRUE(dp.feasible);

  RandomPlacementOptions random_options;
  random_options.k = k;
  const PlacementResult random =
      RandomPlacement(c.instance, random_options, rng);
  if (random.feasible) {
    EXPECT_GE(random.bandwidth + 1e-9, dp.bandwidth);
  }

  const PlacementResult best_effort = BestEffort(c.instance, k);
  if (best_effort.feasible) {
    EXPECT_GE(best_effort.bandwidth + 1e-9, dp.bandwidth);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BaselineOrdering,
                         ::testing::Range<std::uint64_t>(1, 31));

}  // namespace
}  // namespace tdmd::core
