#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/instance.hpp"
#include "core/objective.hpp"
#include "test_util.hpp"
#include "topology/generators.hpp"
#include "traffic/flow.hpp"
#include "traffic/generator.hpp"

namespace tdmd::traffic {
namespace {

TEST(RateDistributionTest, SamplesWithinBounds) {
  Rng rng(1);
  RateDistribution dist;
  for (int i = 0; i < 5000; ++i) {
    const Rate r = SampleRate(dist, rng);
    ASSERT_GE(r, 1);
    ASSERT_LE(r, dist.max_rate);
  }
}

TEST(RateDistributionTest, HeavyTailPresent) {
  Rng rng(2);
  RateDistribution dist;
  int elephants = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    if (SampleRate(dist, rng) >= dist.max_rate / 2) ++elephants;
  }
  // Pareto tail with 12% tail probability: a visible but minority share
  // of samples land in the upper half of the rate range.
  EXPECT_GT(elephants, kSamples / 100);
  EXPECT_LT(elephants, kSamples / 3);
}

TEST(RateDistributionTest, MiceDominate) {
  Rng rng(3);
  RateDistribution dist;
  int mice = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    if (SampleRate(dist, rng) <= 8) ++mice;
  }
  EXPECT_GT(mice, kSamples / 2);  // lognormal body = most flows are small
}

TEST(FlowTest, TotalsOnPaperFlows) {
  const graph::Tree tree = test::PaperTree();
  const FlowSet flows = test::PaperFlows(tree);
  EXPECT_EQ(TotalRate(flows), 9);
  // r|p|: 2*2 + 1*2 + 5*3 + 1*3 = 24 (the paper's F(v1,1)).
  EXPECT_DOUBLE_EQ(TotalUnprocessedBandwidth(flows), 24.0);
}

TEST(FlowTest, MergeSameSourceCombinesRates) {
  const graph::Tree tree = test::PaperTree();
  FlowSet flows = test::PaperFlows(tree);
  // Duplicate the v7 flow twice.
  flows.push_back(flows[2]);
  flows.push_back(flows[2]);
  const FlowSet merged = MergeSameSourceFlows(flows);
  EXPECT_EQ(merged.size(), 4u);
  Rate v7_rate = 0;
  for (const Flow& f : merged) {
    if (f.src == test::kV7) v7_rate = f.rate;
  }
  EXPECT_EQ(v7_rate, 15);
  EXPECT_EQ(TotalRate(merged), TotalRate(flows));
  EXPECT_DOUBLE_EQ(TotalUnprocessedBandwidth(merged),
                   TotalUnprocessedBandwidth(flows));
}

TEST(FlowTest, MergePreservesObjectiveUnderAnyDeployment) {
  // The paper treats same-leaf flows as one flow (Theorem 5's complexity
  // argument); the objective must be invariant.
  Rng rng(7);
  const graph::Tree tree = topology::RandomBoundedTree(20, 3, rng);
  FlowSet flows;
  for (int i = 0; i < 12; ++i) {
    const auto& leaves = tree.Leaves();
    Flow f;
    f.src = leaves[static_cast<std::size_t>(rng.NextBounded(leaves.size()))];
    f.dst = tree.root();
    f.rate = rng.NextInt(1, 5);
    f.path.vertices = tree.PathToRoot(f.src);
    flows.push_back(std::move(f));
  }
  core::Instance original = core::MakeTreeInstance(tree, flows, 0.4);
  core::Instance merged =
      core::MakeTreeInstance(tree, MergeSameSourceFlows(flows), 0.4);
  for (int trial = 0; trial < 20; ++trial) {
    core::Deployment plan(tree.num_vertices());
    for (VertexId v = 0; v < tree.num_vertices(); ++v) {
      if (rng.NextBool(0.3)) plan.Add(v);
    }
    EXPECT_NEAR(core::EvaluateBandwidth(original, plan),
                core::EvaluateBandwidth(merged, plan), 1e-9);
  }
}

TEST(TreeWorkloadTest, FlowsAreValidLeafToRoot) {
  Rng rng(11);
  const graph::Tree tree = topology::RandomBoundedTree(22, 3, rng);
  WorkloadParams params;
  params.flow_density = 0.5;
  params.link_capacity = 100.0;
  const FlowSet flows = GenerateTreeWorkload(tree, params, rng);
  ASSERT_FALSE(flows.empty());
  const graph::Digraph g = tree.ToDigraph();
  EXPECT_TRUE(AllFlowsValid(g, flows));
  for (const Flow& f : flows) {
    EXPECT_TRUE(tree.IsLeaf(f.src));
    EXPECT_EQ(f.dst, tree.root());
  }
}

TEST(TreeWorkloadTest, DensityTargetReached) {
  Rng rng(13);
  const graph::Tree tree = topology::RandomBoundedTree(22, 3, rng);
  for (double density : {0.3, 0.5, 0.8}) {
    WorkloadParams params;
    params.flow_density = density;
    params.link_capacity = 200.0;
    const FlowSet flows = GenerateTreeWorkload(tree, params, rng);
    const double measured =
        MeasureDensity(tree.ToDigraph(), flows, params.link_capacity);
    // Generation stops at the first flow crossing the target, so the
    // measured density is >= target but within one flow's contribution.
    EXPECT_GE(measured, density);
    EXPECT_LT(measured, density + 0.15);
  }
}

TEST(TreeWorkloadTest, HigherDensityMoreLoad) {
  Rng rng_a(17), rng_b(17);
  const graph::Tree tree = topology::RandomBoundedTree(22, 3, rng_a);
  Rng tree_rng(17);
  const graph::Tree same_tree = topology::RandomBoundedTree(22, 3, rng_b);
  WorkloadParams low, high;
  low.flow_density = 0.3;
  high.flow_density = 0.8;
  Rng rng_low(19), rng_high(19);
  const double load_low =
      TotalUnprocessedBandwidth(GenerateTreeWorkload(tree, low, rng_low));
  const double load_high = TotalUnprocessedBandwidth(
      GenerateTreeWorkload(same_tree, high, rng_high));
  EXPECT_LT(load_low, load_high);
}

TEST(GeneralWorkloadTest, FlowsRouteToDestinations) {
  Rng rng(23);
  const graph::Digraph g = topology::Waxman(30, 0.5, 0.4, rng);
  WorkloadParams params;
  params.flow_density = 0.4;
  params.link_capacity = 50.0;
  const std::vector<VertexId> destinations{0, 5};
  const FlowSet flows =
      GenerateGeneralWorkload(g, destinations, params, rng);
  ASSERT_FALSE(flows.empty());
  EXPECT_TRUE(AllFlowsValid(g, flows));
  for (const Flow& f : flows) {
    EXPECT_TRUE(f.dst == 0 || f.dst == 5);
    EXPECT_NE(f.src, f.dst);
  }
}

TEST(GeneralWorkloadTest, DefaultDestinationIsVertexZero) {
  Rng rng(29);
  const graph::Digraph g = topology::Waxman(20, 0.5, 0.4, rng);
  WorkloadParams params;
  params.flow_density = 0.2;
  params.link_capacity = 50.0;
  const FlowSet flows = GenerateGeneralWorkload(g, {}, params, rng);
  for (const Flow& f : flows) {
    EXPECT_EQ(f.dst, 0);
  }
}

TEST(GeneralWorkloadTest, MaxFlowsCapRespected) {
  Rng rng(31);
  const graph::Digraph g = topology::Waxman(15, 0.5, 0.4, rng);
  WorkloadParams params;
  params.flow_density = 50.0;  // unreachable target
  params.link_capacity = 1.0;
  params.max_flows = 64;
  const FlowSet flows = GenerateGeneralWorkload(g, {}, params, rng);
  EXPECT_EQ(flows.size(), 64u);
}

TEST(AllFlowsValidTest, RejectsBrokenFlows) {
  const graph::Tree tree = test::PaperTree();
  const graph::Digraph g = tree.ToDigraph();
  FlowSet flows = test::PaperFlows(tree);
  FlowSet zero_rate = flows;
  zero_rate[0].rate = 0;
  EXPECT_FALSE(AllFlowsValid(g, zero_rate));
  FlowSet wrong_src = flows;
  wrong_src[0].src = test::kV5;
  EXPECT_FALSE(AllFlowsValid(g, wrong_src));
  FlowSet broken_path = flows;
  broken_path[0].path.vertices = {test::kV4, test::kV3, test::kV1};
  EXPECT_FALSE(AllFlowsValid(g, broken_path));
  EXPECT_TRUE(AllFlowsValid(g, flows));
}

}  // namespace
}  // namespace tdmd::traffic
