// Sampling-profiler behavior: install/uninstall, phase attribution via
// the span-maintained thread-local stack, collapsed-stack round trip
// through BuildProfReport, ring-overwrite drop accounting, and the
// latch-across-uninstall contract for ProfileSampleTotal /
// ProfileDropTotal.  CPU-burning loops run until a target sample count
// arrives (with a wall-clock cap), so slow or sanitized builds do not
// flake.
#include "obs/profiler.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "obs/prof_report.hpp"
#include "obs/trace.hpp"

// TSan defers signal delivery to its interception points (function
// entry/exit, atomics), so under TSan samples land disproportionately
// at span boundaries — depth-specific stack-shape assertions do not
// hold there.  Attribution totals and ring/drop/latch behavior do, and
// obs_profiler_stress_test is the TSan-facing suite.
#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define TDMD_TEST_UNDER_TSAN 1
#endif
#endif
#if !defined(TDMD_TEST_UNDER_TSAN) && defined(__SANITIZE_THREAD__)
#define TDMD_TEST_UNDER_TSAN 1
#endif
#ifndef TDMD_TEST_UNDER_TSAN
#define TDMD_TEST_UNDER_TSAN 0
#endif

namespace tdmd::obs {
namespace {

/// Installs `profiler` for the test's scope; uninstalls on exit even if
/// an assertion fails mid-test.
class ScopedInstall {
 public:
  explicit ScopedInstall(Profiler* profiler) { InstallProfiler(profiler); }
  ~ScopedInstall() { InstallProfiler(nullptr); }
};

/// Burns CPU inside an epoch > gtp-round span pair until the profiler has
/// delivered at least `target` samples or ~10 s of wall time passed.
/// Returns the delivered-sample total at exit.
std::uint64_t BusySpansUntil(Profiler& profiler, std::uint64_t target) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  volatile std::uint64_t sink = 0;
  while (profiler.SampleTotal() < target &&
         std::chrono::steady_clock::now() < deadline) {
    ScopedSpan epoch(TracePhase::kEpoch);
    for (int i = 0; i < 200; ++i) {
      ScopedSpan round(TracePhase::kGtpRound);
      for (int j = 0; j < 5000; ++j) sink = sink + static_cast<unsigned>(j);
    }
  }
  return profiler.SampleTotal();
}

TEST(ObsProfilerTest, NoProfilerInstalledIsInert) {
  ASSERT_EQ(CurrentProfiler(), nullptr);
  // Spans must be callable with no profiler (and no tracer): the hook
  // path is one relaxed load of the shared hook word.
  ScopedSpan span(TracePhase::kEpoch);
  TraceInstant(TracePhase::kAdoption, 1);
}

TEST(ObsProfilerTest, SamplesAttributeToOpenPhases) {
  Profiler profiler;
  EXPECT_EQ(profiler.sample_hz(), Profiler::kDefaultSampleHz);
  std::uint64_t delivered = 0;
  {
    ScopedInstall install(&profiler);
    ASSERT_EQ(CurrentProfiler(), &profiler);
    delivered = BusySpansUntil(profiler, 25);
  }
  ASSERT_GE(delivered, 25u) << "SIGPROF sampling did not deliver; "
                               "ITIMER_PROF unavailable on this platform?";

  const ProfDrainResult drained = profiler.Drain();
  EXPECT_EQ(drained.sample_hz, Profiler::kDefaultSampleHz);
  EXPECT_EQ(drained.num_threads, 1u);
  EXPECT_GT(drained.samples, 0u);

  // Nearly all CPU burned inside epoch>gtp-round: that stack must carry
  // the dominant share, and attribution overall must clear 90%.
  std::uint64_t attributed = 0;
  std::uint64_t nested = 0;
  for (const ProfStack& stack : drained.stacks) {
    if (stack.phases.empty()) continue;
    attributed += stack.count;
    if (stack.phases.size() == 2 &&
        stack.phases[0] == TracePhase::kEpoch &&
        stack.phases[1] == TracePhase::kGtpRound) {
      nested += stack.count;
    }
  }
  const std::uint64_t total = drained.samples + drained.orphaned;
  EXPECT_GE(attributed * 10, total * 9)
      << attributed << " of " << total << " samples attributed";
  if (!TDMD_TEST_UNDER_TSAN) {
    EXPECT_GT(nested, 0u);
  }
  // Stacks arrive sorted by count descending.
  for (std::size_t i = 1; i < drained.stacks.size(); ++i) {
    EXPECT_GE(drained.stacks[i - 1].count, drained.stacks[i].count);
  }
}

TEST(ObsProfilerTest, CollapsedProfileRoundTripsThroughReport) {
  Profiler profiler;
  {
    ScopedInstall install(&profiler);
    BusySpansUntil(profiler, 25);
  }
  const ProfDrainResult drained = profiler.Drain();
  ASSERT_GT(drained.samples, 0u);

  std::ostringstream os;
  WriteCollapsedProfile(os, drained);
  const std::string text = os.str();
  EXPECT_NE(text.find("# tdmd-prof samples="), std::string::npos);
  EXPECT_NE(text.find("hz=997"), std::string::npos);

  std::istringstream is(text);
  const ProfReport report = BuildProfReport(is);
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_EQ(report.samples, drained.samples);
  EXPECT_EQ(report.orphaned, drained.orphaned);
  EXPECT_EQ(report.sample_hz, drained.sample_hz);
  EXPECT_GE(report.attributed_fraction, 0.9);
  bool saw_gtp_round = false;
  for (const ProfReportRow& row : report.rows) {
    if (row.phase == "gtp-round") {
      saw_gtp_round = true;
      EXPECT_GT(row.self, 0u);
      EXPECT_GE(row.total, row.self);
    }
  }
  if (!TDMD_TEST_UNDER_TSAN) {
    EXPECT_TRUE(saw_gtp_round);
  }
}

TEST(ObsProfilerTest, TinyRingOverwritesAndCountsDrops) {
  Profiler::Options options;
  options.ring_capacity = 8;
  Profiler profiler(options);
  std::uint64_t delivered = 0;
  {
    ScopedInstall install(&profiler);
    delivered = BusySpansUntil(profiler, 50);
  }
  ASSERT_GE(delivered, 50u);
  const std::uint64_t dropped_before_drain = profiler.DroppedTotal();
  EXPECT_GT(dropped_before_drain, 0u);
  const ProfDrainResult drained = profiler.Drain();
  EXPECT_LE(drained.samples, 8u);
  EXPECT_GE(drained.dropped, dropped_before_drain);
  // Drain clears the rings but keeps cumulative totals.
  EXPECT_EQ(profiler.DroppedTotal(), drained.dropped);
  const ProfDrainResult again = profiler.Drain();
  EXPECT_EQ(again.samples, 0u);
  EXPECT_EQ(again.dropped, drained.dropped);
}

TEST(ObsProfilerTest, TotalsLatchAcrossUninstall) {
  std::uint64_t first_samples = 0;
  {
    Profiler profiler;
    {
      ScopedInstall install(&profiler);
      BusySpansUntil(profiler, 10);
    }
    first_samples = ProfileSampleTotal();
    ASSERT_GE(first_samples, 10u);
    // Latched values answer while uninstalled, from the last profiler.
    EXPECT_EQ(ProfileDropTotal(), profiler.DroppedTotal());
  }
  // The profiler is destroyed; the latched totals must survive it.
  EXPECT_EQ(ProfileSampleTotal(), first_samples);

  // A fresh install answers live again and re-latches on uninstall.
  Profiler second;
  {
    ScopedInstall install(&second);
    BusySpansUntil(second, 5);
    EXPECT_EQ(ProfileSampleTotal(), second.SampleTotal());
  }
  EXPECT_EQ(ProfileSampleTotal(), second.SampleTotal());
}

TEST(ObsProfilerTest, DeepNestingKeepsOutermostFrames) {
  Profiler profiler;
  std::uint64_t delivered = 0;
  {
    ScopedInstall install(&profiler);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    volatile std::uint64_t sink = 0;
    while (profiler.SampleTotal() < 15 &&
           std::chrono::steady_clock::now() < deadline) {
      // 9 nested spans: two deeper than kMaxProfiledDepth.  The sample
      // must keep the outermost 7 and the push/pop must stay balanced.
      ScopedSpan s1(TracePhase::kEpoch);
      ScopedSpan s2(TracePhase::kIndexDelta);
      ScopedSpan s3(TracePhase::kPatch);
      ScopedSpan s4(TracePhase::kResolveAttempt);
      ScopedSpan s5(TracePhase::kGtpRound);
      ScopedSpan s6(TracePhase::kCelfPop);
      ScopedSpan s7(TracePhase::kPoolTaskRun);
      ScopedSpan s8(TracePhase::kCheckpoint);
      ScopedSpan s9(TracePhase::kRestore);
      for (int j = 0; j < 200000; ++j) sink = sink + static_cast<unsigned>(j);
    }
    delivered = profiler.SampleTotal();
  }
  ASSERT_GE(delivered, 15u);
  const ProfDrainResult drained = profiler.Drain();
  bool saw_capped = false;
  for (const ProfStack& stack : drained.stacks) {
    ASSERT_LE(stack.phases.size(), kMaxProfiledDepth);
    if (stack.phases.size() == kMaxProfiledDepth &&
        stack.phases.front() == TracePhase::kEpoch &&
        stack.phases.back() == TracePhase::kPoolTaskRun) {
      saw_capped = true;
    }
  }
  if (!TDMD_TEST_UNDER_TSAN) {
    EXPECT_TRUE(saw_capped);
  }
}

TEST(ObsProfReportTest, SyntheticProfileSelfTotalMath) {
  std::istringstream is(
      "# tdmd-prof samples=10 dropped=1 orphaned=2 threads=3 hz=499\n"
      "epoch;gtp-round 4\n"
      "epoch 3\n"
      "(unattributed) 3\n");
  const ProfReport report = BuildProfReport(is);
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_EQ(report.samples, 10u);
  EXPECT_EQ(report.dropped, 1u);
  EXPECT_EQ(report.orphaned, 2u);
  EXPECT_EQ(report.num_threads, 3u);
  EXPECT_EQ(report.sample_hz, 499u);
  // Unattributed = the explicit line (3) plus orphaned (2).
  EXPECT_EQ(report.unattributed, 5u);
  EXPECT_NEAR(report.attributed_fraction, 7.0 / 12.0, 1e-9);
  ASSERT_EQ(report.rows.size(), 2u);
  // gtp-round: self 4 (innermost of the nested stack), total 4.
  EXPECT_EQ(report.rows[0].phase, "gtp-round");
  EXPECT_EQ(report.rows[0].self, 4u);
  EXPECT_EQ(report.rows[0].total, 4u);
  // epoch: self 3 (the bare line), total 7 (both stacks).
  EXPECT_EQ(report.rows[1].phase, "epoch");
  EXPECT_EQ(report.rows[1].self, 3u);
  EXPECT_EQ(report.rows[1].total, 7u);

  std::ostringstream os;
  WriteProfReport(os, report);
  const std::string text = os.str();
  EXPECT_NE(text.find("10 samples @499 Hz"), std::string::npos);
  EXPECT_NE(text.find("gtp-round"), std::string::npos);
}

TEST(ObsProfReportTest, MalformedInputsFailWithOneLineDiagnostics) {
  const char* cases[][2] = {
      {"epoch 3\n", "header"},
      {"# tdmd-prof samples=abc dropped=0 orphaned=0 threads=1 hz=997\n",
       "header"},
      {"# tdmd-prof samples=4 dropped=0 orphaned=0 threads=1 hz=997\n"
       "epoch\n",
       "count"},
      {"# tdmd-prof samples=4 dropped=0 orphaned=0 threads=1 hz=997\n"
       "epoch notanumber\n",
       "count"},
      {"# tdmd-prof samples=4 dropped=0 orphaned=0 threads=1 hz=997\n"
       "epoch;; 3\n",
       "frame"},
      {"# tdmd-prof samples=0 dropped=0 orphaned=0 threads=0 hz=997\n",
       "no samples"},
  };
  for (const auto& test_case : cases) {
    std::istringstream is(test_case[0]);
    const ProfReport report = BuildProfReport(is);
    EXPECT_FALSE(report.ok) << "input: " << test_case[0];
    EXPECT_NE(report.error.find(test_case[1]), std::string::npos)
        << "diagnostic '" << report.error << "' does not mention '"
        << test_case[1] << "'";
    // One-line contract: diagnostics never embed newlines.
    EXPECT_EQ(report.error.find('\n'), std::string::npos);
  }
}

}  // namespace
}  // namespace tdmd::obs
