#include "core/instance.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace tdmd::core {
namespace {

TEST(InstanceTest, PathIndexAlongPaperFlow3) {
  Instance instance = test::PaperInstance();
  // Flow 2 (the paper's f3): v7 -> v6 -> v3 -> v1.
  EXPECT_EQ(instance.PathIndex(2, test::kV7), 0);
  EXPECT_EQ(instance.PathIndex(2, test::kV6), 1);
  EXPECT_EQ(instance.PathIndex(2, test::kV3), 2);
  EXPECT_EQ(instance.PathIndex(2, test::kV1), 3);
  EXPECT_EQ(instance.PathIndex(2, test::kV4), -1);  // off-path
}

TEST(InstanceTest, DiminishedEdgesIsDownstreamCount) {
  Instance instance = test::PaperInstance();
  // Serving f3 at its source diminishes all 3 edges; at the root, none.
  EXPECT_EQ(instance.DiminishedEdges(2, test::kV7), 3);
  EXPECT_EQ(instance.DiminishedEdges(2, test::kV6), 2);
  EXPECT_EQ(instance.DiminishedEdges(2, test::kV1), 0);
}

TEST(InstanceTest, FlowsThroughInvertedIndex) {
  Instance instance = test::PaperInstance();
  // Root sees all four flows.
  EXPECT_EQ(instance.FlowsThrough(test::kV1).size(), 4u);
  // v2 sees flows 0 (f1) and 1 (f4).
  const auto& through_v2 = instance.FlowsThrough(test::kV2);
  ASSERT_EQ(through_v2.size(), 2u);
  EXPECT_EQ(through_v2[0].flow, 0);
  EXPECT_EQ(through_v2[0].path_index, 1);
  EXPECT_EQ(through_v2[1].flow, 1);
  // Leaves see exactly their own flow at index 0.
  const auto& through_v7 = instance.FlowsThrough(test::kV7);
  ASSERT_EQ(through_v7.size(), 1u);
  EXPECT_EQ(through_v7[0].flow, 2);
  EXPECT_EQ(through_v7[0].path_index, 0);
}

TEST(InstanceTest, UnprocessedBandwidthAndLowerBound) {
  Instance instance = test::PaperInstance();
  EXPECT_DOUBLE_EQ(instance.UnprocessedBandwidth(), 24.0);
  EXPECT_DOUBLE_EQ(instance.MinimumPossibleBandwidth(), 12.0);
}

TEST(InstanceTest, LambdaBoundaries) {
  const graph::Tree tree = test::PaperTree();
  const traffic::FlowSet flows = test::PaperFlows(tree);
  Instance spam = MakeTreeInstance(tree, flows, 0.0);   // spam filter
  Instance noop = MakeTreeInstance(tree, flows, 1.0);   // no-op middlebox
  EXPECT_DOUBLE_EQ(spam.MinimumPossibleBandwidth(), 0.0);
  EXPECT_DOUBLE_EQ(noop.MinimumPossibleBandwidth(), 24.0);
}

TEST(InstanceTest, EmptyFlowSet) {
  const graph::Tree tree = test::PaperTree();
  Instance instance = MakeTreeInstance(tree, {}, 0.5);
  EXPECT_EQ(instance.num_flows(), 0);
  EXPECT_DOUBLE_EQ(instance.UnprocessedBandwidth(), 0.0);
}

TEST(InstanceDeathTest, LambdaOutOfRangeAborts) {
  const graph::Tree tree = test::PaperTree();
  const traffic::FlowSet flows = test::PaperFlows(tree);
  EXPECT_DEATH(MakeTreeInstance(tree, flows, -0.1), "\\[0, 1\\]");
  EXPECT_DEATH(MakeTreeInstance(tree, flows, 1.5), "\\[0, 1\\]");
}

TEST(InstanceDeathTest, TreeModelValidation) {
  const graph::Tree tree = test::PaperTree();
  traffic::FlowSet internal_src = test::PaperFlows(tree);
  internal_src[0].src = test::kV2;  // not a leaf
  internal_src[0].path.vertices = tree.PathToRoot(test::kV2);
  EXPECT_DEATH(MakeTreeInstance(tree, internal_src, 0.5), "leaf");

  traffic::FlowSet wrong_dst = test::PaperFlows(tree);
  wrong_dst[0].dst = test::kV2;
  wrong_dst[0].path.vertices = {test::kV4, test::kV2};
  EXPECT_DEATH(MakeTreeInstance(tree, wrong_dst, 0.5), "root");
}

TEST(InstanceDeathTest, InvalidFlowRejected) {
  const graph::Tree tree = test::PaperTree();
  traffic::FlowSet flows = test::PaperFlows(tree);
  flows[0].rate = 0;
  EXPECT_DEATH(MakeTreeInstance(tree, flows, 0.5), "invalid flow");
}

TEST(InstanceTest, GeneralTopologyFlowsIndexed) {
  Rng rng(3);
  Instance instance = test::MakeRandomGeneralCase(20, 0.5, 10, rng);
  EXPECT_EQ(instance.num_flows(), 10);
  for (FlowId f = 0; f < instance.num_flows(); ++f) {
    const auto& path = instance.flow(f).path.vertices;
    for (std::size_t i = 0; i < path.size(); ++i) {
      EXPECT_EQ(instance.PathIndex(f, path[i]),
                static_cast<std::int32_t>(i));
    }
  }
}

}  // namespace
}  // namespace tdmd::core
