#include "sim/link_sim.hpp"

#include <gtest/gtest.h>

#include "core/gtp.hpp"
#include "core/objective.hpp"
#include "test_util.hpp"

namespace tdmd::sim {
namespace {

using core::Deployment;
using core::EvaluateBandwidth;

TEST(LinkSimTest, EmptyDeploymentFullRateEverywhere) {
  core::Instance instance = test::PaperInstance();
  Deployment empty(instance.num_vertices());
  LinkLoadReport report = SimulateLinkLoads(instance, empty);
  EXPECT_DOUBLE_EQ(report.total, 24.0);
  EXPECT_EQ(report.unserved_flows, 4);
  // Heaviest arc is v7 -> v6 ... actually v3 -> v1 carries f3 + f2 = 6.
  EXPECT_DOUBLE_EQ(report.peak, 6.0);
}

TEST(LinkSimTest, PerArcLoadsOnPaperPlan) {
  core::Instance instance = test::PaperInstance();
  const graph::Tree tree = test::PaperTree();
  Deployment plan(instance.num_vertices(), {test::kV2, test::kV6});
  LinkLoadReport report = SimulateLinkLoads(instance, plan);
  EXPECT_DOUBLE_EQ(report.total, 16.5);
  EXPECT_EQ(report.unserved_flows, 0);

  const graph::Digraph& g = instance.network();
  // v7 -> v6 still carries f3 at full rate 5 (box is at v6).
  EXPECT_DOUBLE_EQ(
      report.arc_load[static_cast<std::size_t>(
          g.FindArc(test::kV7, test::kV6))],
      5.0);
  // v6 -> v3 carries f3 and f2 both diminished: 2.5 + 0.5.
  EXPECT_DOUBLE_EQ(
      report.arc_load[static_cast<std::size_t>(
          g.FindArc(test::kV6, test::kV3))],
      3.0);
  // v4 -> v2 carries f1 at full rate 2.
  EXPECT_DOUBLE_EQ(
      report.arc_load[static_cast<std::size_t>(
          g.FindArc(test::kV4, test::kV2))],
      2.0);
}

TEST(LinkSimTest, WithinCapacityThresholds) {
  core::Instance instance = test::PaperInstance();
  Deployment empty(instance.num_vertices());
  EXPECT_TRUE(WithinCapacity(instance, empty, 6.0));
  EXPECT_FALSE(WithinCapacity(instance, empty, 5.9));
}

class SimCrossValidation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimCrossValidation, LinkSumEqualsClosedFormObjective) {
  // The core property: the analytic objective of Section 3.2 equals the
  // per-link simulation, for arbitrary deployments, lambdas and
  // topologies.
  Rng rng(GetParam());
  const double lambda = rng.NextDouble(0.0, 1.0);

  // Tree case.
  const test::RandomTreeCase tree_case =
      test::MakeRandomTreeCase(static_cast<VertexId>(rng.NextInt(4, 30)),
                               lambda, rng);
  for (int trial = 0; trial < 10; ++trial) {
    Deployment plan(tree_case.instance.num_vertices());
    for (VertexId v = 0; v < tree_case.instance.num_vertices(); ++v) {
      if (rng.NextBool(0.25)) plan.Add(v);
    }
    const LinkLoadReport report =
        SimulateLinkLoads(tree_case.instance, plan);
    EXPECT_NEAR(report.total, EvaluateBandwidth(tree_case.instance, plan),
                1e-9);
  }

  // General case.
  core::Instance general = test::MakeRandomGeneralCase(
      static_cast<VertexId>(rng.NextInt(6, 25)), lambda, 12, rng);
  for (int trial = 0; trial < 10; ++trial) {
    Deployment plan(general.num_vertices());
    for (VertexId v = 0; v < general.num_vertices(); ++v) {
      if (rng.NextBool(0.25)) plan.Add(v);
    }
    const LinkLoadReport report = SimulateLinkLoads(general, plan);
    EXPECT_NEAR(report.total, EvaluateBandwidth(general, plan), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimCrossValidation,
                         ::testing::Range<std::uint64_t>(1, 26));

TEST(LinkSimTest, UnservedCountMatchesAllocation) {
  Rng rng(3);
  core::Instance instance = test::MakeRandomGeneralCase(20, 0.5, 15, rng);
  Deployment plan(instance.num_vertices());
  plan.Add(5);
  plan.Add(11);
  const LinkLoadReport report = SimulateLinkLoads(instance, plan);
  const core::Allocation allocation = core::Allocate(instance, plan);
  FlowId expected = 0;
  for (VertexId v : allocation.serving_vertex) {
    if (v == kInvalidVertex) ++expected;
  }
  EXPECT_EQ(report.unserved_flows, expected);
}

TEST(LinkSimTest, GtpDeploymentServesEverything) {
  Rng rng(7);
  core::Instance instance = test::MakeRandomGeneralCase(22, 0.3, 18, rng);
  const core::PlacementResult gtp = core::Gtp(instance);
  const LinkLoadReport report =
      SimulateLinkLoads(instance, gtp.deployment);
  EXPECT_EQ(report.unserved_flows, 0);
  EXPECT_NEAR(report.total, gtp.bandwidth, 1e-9);
}

TEST(LinkSimTest, SpamFilterZeroesDownstreamLinks) {
  const graph::Tree tree = test::PaperTree();
  core::Instance instance =
      core::MakeTreeInstance(tree, test::PaperFlows(tree), 0.0);
  Deployment plan(instance.num_vertices(), {test::kV6});
  const LinkLoadReport report = SimulateLinkLoads(instance, plan);
  const graph::Digraph& g = instance.network();
  // Downstream of the filter, f3/f2 traffic is gone.
  EXPECT_DOUBLE_EQ(report.arc_load[static_cast<std::size_t>(
                       g.FindArc(test::kV6, test::kV3))],
                   0.0);
  // Upstream it still flows.
  EXPECT_DOUBLE_EQ(report.arc_load[static_cast<std::size_t>(
                       g.FindArc(test::kV7, test::kV6))],
                   5.0);
}

}  // namespace
}  // namespace tdmd::sim
