#include "graph/lca_lifting.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "graph/lca.hpp"
#include "test_util.hpp"
#include "topology/generators.hpp"

namespace tdmd::graph {
namespace {

TEST(BinaryLiftingLcaTest, PaperExamples) {
  Tree tree = test::PaperTree();
  BinaryLiftingLca lca(tree);
  EXPECT_EQ(lca.Query(test::kV4, test::kV5), test::kV2);
  EXPECT_EQ(lca.Query(test::kV1, test::kV6), test::kV1);
  EXPECT_EQ(lca.Query(test::kV7, test::kV8), test::kV6);
  EXPECT_EQ(lca.Query(test::kV6, test::kV6), test::kV6);
  EXPECT_EQ(lca.Query(test::kV3, test::kV7), test::kV3);
}

TEST(BinaryLiftingLcaTest, KthAncestorWalks) {
  Tree tree = test::PaperTree();
  BinaryLiftingLca lca(tree);
  EXPECT_EQ(lca.KthAncestor(test::kV7, 0), test::kV7);
  EXPECT_EQ(lca.KthAncestor(test::kV7, 1), test::kV6);
  EXPECT_EQ(lca.KthAncestor(test::kV7, 2), test::kV3);
  EXPECT_EQ(lca.KthAncestor(test::kV7, 3), test::kV1);
  EXPECT_EQ(lca.KthAncestor(test::kV7, 4), kInvalidVertex);
  EXPECT_EQ(lca.KthAncestor(test::kV1, 1), kInvalidVertex);
}

TEST(BinaryLiftingLcaTest, KthAncestorBeyondRangeOnDeepChain) {
  std::vector<VertexId> parent(40);
  parent[0] = kInvalidVertex;
  for (VertexId v = 1; v < 40; ++v) {
    parent[static_cast<std::size_t>(v)] = v - 1;
  }
  Tree tree(std::move(parent));
  BinaryLiftingLca lca(tree);
  EXPECT_EQ(lca.KthAncestor(39, 39), 0);
  EXPECT_EQ(lca.KthAncestor(39, 40), kInvalidVertex);
  EXPECT_EQ(lca.KthAncestor(39, 1000), kInvalidVertex);
  EXPECT_EQ(lca.KthAncestor(20, 5), 15);
}

TEST(BinaryLiftingLcaTest, DistanceMatchesSparseTable) {
  Tree tree = test::PaperTree();
  BinaryLiftingLca lifting(tree);
  LcaIndex sparse(tree);
  for (VertexId u = 0; u < tree.num_vertices(); ++u) {
    for (VertexId v = 0; v < tree.num_vertices(); ++v) {
      EXPECT_EQ(lifting.Distance(u, v), sparse.Distance(u, v));
    }
  }
}

TEST(BinaryLiftingLcaTest, SingleVertexTree) {
  Tree tree(std::vector<VertexId>{kInvalidVertex});
  BinaryLiftingLca lca(tree);
  EXPECT_EQ(lca.Query(0, 0), 0);
  EXPECT_EQ(lca.KthAncestor(0, 0), 0);
  EXPECT_EQ(lca.KthAncestor(0, 1), kInvalidVertex);
}

class LiftingMatchesSparse : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(LiftingMatchesSparse, OnRandomTrees) {
  Rng rng(GetParam());
  const auto n = static_cast<VertexId>(rng.NextInt(2, 150));
  Tree tree = topology::RandomTree(n, rng);
  BinaryLiftingLca lifting(tree);
  LcaIndex sparse(tree);
  for (int trial = 0; trial < 250; ++trial) {
    const auto u = static_cast<VertexId>(
        rng.NextBounded(static_cast<std::uint64_t>(n)));
    const auto v = static_cast<VertexId>(
        rng.NextBounded(static_cast<std::uint64_t>(n)));
    ASSERT_EQ(lifting.Query(u, v), sparse.Query(u, v))
        << "u=" << u << " v=" << v << " n=" << n;
    ASSERT_EQ(lifting.Query(u, v), NaiveLca(tree, u, v));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LiftingMatchesSparse,
                         ::testing::Values(11, 23, 37, 41, 59, 67, 73, 83));

}  // namespace
}  // namespace tdmd::graph
