#include "core/brute_force.hpp"

#include <gtest/gtest.h>

#include "core/objective.hpp"
#include "test_util.hpp"

namespace tdmd::core {
namespace {

TEST(BruteForceTest, PaperTreeOptimaMatchKnownValues) {
  Instance instance = test::PaperInstance();
  const double expected[] = {24.0, 16.5, 13.5, 12.0};
  for (std::size_t k = 1; k <= 4; ++k) {
    auto result = BruteForceOptimal(instance, k);
    ASSERT_TRUE(result.has_value());
    EXPECT_DOUBLE_EQ(result->best.bandwidth, expected[k - 1]) << "k=" << k;
    EXPECT_TRUE(result->best.feasible);
    EXPECT_LE(result->best.deployment.size(), k);
  }
}

TEST(BruteForceTest, InfeasibleBudgetReturnsNullopt) {
  Instance instance = test::PaperInstance();
  EXPECT_FALSE(BruteForceOptimal(instance, 0).has_value());
}

TEST(BruteForceTest, EmptyFlowSetOptimumIsEmptyPlan) {
  const graph::Tree tree = test::PaperTree();
  Instance instance = MakeTreeInstance(tree, {}, 0.5);
  auto result = BruteForceOptimal(instance, 2);
  ASSERT_TRUE(result.has_value());
  EXPECT_DOUBLE_EQ(result->best.bandwidth, 0.0);
  EXPECT_TRUE(result->best.deployment.empty());
}

TEST(BruteForceTest, EvaluationCountMatchesBinomialSums) {
  Instance instance = test::PaperInstance();
  auto result = BruteForceOptimal(instance, 2);
  ASSERT_TRUE(result.has_value());
  // C(8,0) + C(8,1) + C(8,2) = 1 + 8 + 28 = 37.
  EXPECT_EQ(result->evaluated, 37u);
}

TEST(BruteForceTest, MaxDecrementIsMonotoneInK) {
  Instance instance = test::PaperInstance();
  double previous = -1.0;
  for (std::size_t k = 1; k <= 5; ++k) {
    const Bandwidth d = BruteForceMaxDecrement(instance, k);
    EXPECT_GE(d + 1e-12, previous);
    previous = d;
  }
  // Lemma 1: the max decrement saturates at (1 - lambda) sum r|p| = 12.
  EXPECT_DOUBLE_EQ(BruteForceMaxDecrement(instance, 4), 12.0);
  EXPECT_DOUBLE_EQ(BruteForceMaxDecrement(instance, 8), 12.0);
}

TEST(BruteForceTest, MaxDecrementSingleBox) {
  // Best single vertex is v7: 0.5 * 5 * 3 = 7.5.
  Instance instance = test::PaperInstance();
  EXPECT_DOUBLE_EQ(BruteForceMaxDecrement(instance, 1), 7.5);
}

TEST(BruteForceDeathTest, GuardsHugeSearchSpaces) {
  Rng rng(1);
  Instance instance = test::MakeRandomGeneralCase(40, 0.5, 5, rng);
  EXPECT_DEATH(BruteForceOptimal(instance, 20), "too large");
}

}  // namespace
}  // namespace tdmd::core
