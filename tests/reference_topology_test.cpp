#include "topology/reference.hpp"

#include <gtest/gtest.h>

#include "core/tdmd.hpp"
#include "graph/traversal.hpp"
#include "test_util.hpp"
#include "traffic/generator.hpp"

namespace tdmd::topology {
namespace {

TEST(AbileneTest, StructureMatchesThePublishedBackbone) {
  graph::Digraph g = Abilene();
  EXPECT_EQ(g.num_vertices(), 11);
  EXPECT_EQ(g.num_arcs(), 28);  // 14 links * 2 directions
  EXPECT_TRUE(g.IsSymmetric());
  EXPECT_TRUE(graph::IsStronglyConnected(g));
  // Spot checks: Denver <-> Kansas City, no LA <-> New York shortcut.
  EXPECT_NE(g.FindArc(3, 4), kInvalidEdge);
  EXPECT_EQ(g.FindArc(2, 10), kInvalidEdge);
}

TEST(AbileneTest, NodeNames) {
  EXPECT_EQ(AbileneNodeName(0), "Seattle");
  EXPECT_EQ(AbileneNodeName(10), "NewYork");
  EXPECT_DEATH(AbileneNodeName(11), "out of range");
}

TEST(NsfnetTest, StructureMatchesTheT1Backbone) {
  graph::Digraph g = Nsfnet();
  EXPECT_EQ(g.num_vertices(), 14);
  EXPECT_EQ(g.num_arcs(), 42);  // 21 links * 2 directions
  EXPECT_TRUE(g.IsSymmetric());
  EXPECT_TRUE(graph::IsStronglyConnected(g));
}

TEST(ReferenceTopologyTest, TdmdPipelineRunsOnBoth) {
  // End-to-end: workload + GTP + exact B&B agree on the fixed backbones.
  for (int which = 0; which < 2; ++which) {
    graph::Digraph g = which == 0 ? Abilene() : Nsfnet();
    Rng rng(100 + which);
    traffic::WorkloadParams params;
    params.flow_density = 0.4;
    params.link_capacity = 20.0;
    traffic::FlowSet flows =
        traffic::GenerateGeneralWorkload(g, {0}, params, rng);
    core::Instance instance(std::move(g), std::move(flows), 0.5);

    core::GtpOptions options;
    options.max_middleboxes = 4;
    options.feasibility_aware = true;
    const core::PlacementResult gtp = core::Gtp(instance, options);
    const auto exact = core::ExactBranchAndBound(instance, 4);
    if (exact.has_value()) {
      EXPECT_LE(exact->best.bandwidth, gtp.bandwidth + 1e-9);
      // GTP stays within the usual few percent on these backbones too.
      EXPECT_LE(gtp.bandwidth, 1.15 * exact->best.bandwidth)
          << (which == 0 ? "Abilene" : "NSFNET");
    }
  }
}

TEST(ReferenceTopologyTest, TreeModelFromAbilene) {
  // The Section-5 tree model applies to a BFS tree of the backbone.
  graph::Digraph g = Abilene();
  const graph::Tree tree = graph::Tree::BfsTreeOf(g, /*root=*/10);  // NYC
  EXPECT_EQ(tree.root(), 10);
  Rng rng(7);
  traffic::WorkloadParams params;
  params.flow_density = 0.4;
  params.link_capacity = 30.0;
  const traffic::FlowSet flows = traffic::MergeSameSourceFlows(
      traffic::GenerateTreeWorkload(tree, params, rng));
  core::Instance instance = core::MakeTreeInstance(tree, flows, 0.5);
  const core::PlacementResult dp = core::DpTree(instance, tree, 4);
  const core::PlacementResult hat = core::Hat(instance, tree, 4);
  EXPECT_TRUE(dp.feasible);
  EXPECT_GE(hat.bandwidth + 1e-9, dp.bandwidth);
}

}  // namespace
}  // namespace tdmd::topology
