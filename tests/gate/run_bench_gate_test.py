#!/usr/bin/env python3
"""Fixture test for tools/bench_gate (ctest: bench_gate_fixture).

Builds a synthetic baseline + gate config in a temp dir and proves the
three contractual behaviours:

  * an unchanged re-run of the workload stays green (exit 0);
  * an injected 2x slowdown in a gated "lower" metric turns red (exit 1)
    and an equivalent collapse of a "higher" metric turns red too;
  * min-of-repeats folding: one noisy-bad run next to one good run of
    the same artifact stays green;
  * configuration errors (missing baseline, non-numeric metric) exit 2.
"""

import json
import os
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
BENCH_GATE = os.path.join(REPO_ROOT, "tools", "bench_gate")

FAILURES = []


def write_json(path, doc):
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle)


def run_gate(args):
    proc = subprocess.run(
        [sys.executable, BENCH_GATE] + args,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    return proc.returncode, proc.stdout


def check(name, expected_exit, args):
    code, output = run_gate(args)
    if code != expected_exit:
        FAILURES.append("%s: expected exit %d, got %d\n%s"
                        % (name, expected_exit, code, output))
    return output


def main():
    with tempfile.TemporaryDirectory(prefix="bench_gate_test_") as tmp:
        baselines = os.path.join(tmp, "baselines")
        write_json(os.path.join(baselines, "BENCH_fake.json"),
                   {"bench": "fake", "wall_ms": 100.0,
                    "attributed_fraction": 0.9})
        write_json(os.path.join(baselines, "gate.json"), {"metrics": [
            {"file": "BENCH_fake.json", "metric": "wall_ms",
             "direction": "lower", "rel_band": 0.20, "abs_slack": 0.0},
            {"file": "BENCH_fake.json", "metric": "attributed_fraction",
             "direction": "higher", "rel_band": 0.10, "abs_slack": 0.0},
        ]})

        # Unchanged re-run: identical numbers must pass.
        same = os.path.join(tmp, "same")
        write_json(os.path.join(same, "BENCH_fake.json"),
                   {"wall_ms": 100.0, "attributed_fraction": 0.9})
        check("unchanged", 0, ["--baselines", baselines, same])

        # Noise inside the band passes too.
        noisy = os.path.join(tmp, "noisy")
        write_json(os.path.join(noisy, "BENCH_fake.json"),
                   {"wall_ms": 115.0, "attributed_fraction": 0.85})
        check("in-band noise", 0, ["--baselines", baselines, noisy])

        # Injected 2x slowdown: far outside the 20% band, must fail.
        slow = os.path.join(tmp, "slow")
        write_json(os.path.join(slow, "BENCH_fake.json"),
                   {"wall_ms": 200.0, "attributed_fraction": 0.9})
        output = check("2x slowdown", 1, ["--baselines", baselines, slow])
        if "FAIL" not in output or "wall_ms" not in output:
            FAILURES.append("2x slowdown: output names no failing metric:\n"
                            + output)

        # Collapsed "higher" metric must fail as well.
        collapsed = os.path.join(tmp, "collapsed")
        write_json(os.path.join(collapsed, "BENCH_fake.json"),
                   {"wall_ms": 100.0, "attributed_fraction": 0.4})
        check("attribution collapse", 1, ["--baselines", baselines,
                                          collapsed])

        # Min-of-repeats: a good run beside the slow one rescues the gate.
        check("min-of-repeats", 0, ["--baselines", baselines, slow, same])

        # Missing baseline file and malformed metric are usage errors.
        check("missing baseline", 2,
              ["--baselines", os.path.join(tmp, "nowhere"), same])
        broken = os.path.join(tmp, "broken")
        write_json(os.path.join(broken, "BENCH_fake.json"),
                   {"wall_ms": "fast", "attributed_fraction": 0.9})
        check("non-numeric metric", 2, ["--baselines", baselines, broken])

    if FAILURES:
        print("bench_gate fixture test: %d failure(s)" % len(FAILURES))
        for failure in FAILURES:
            print("---\n" + failure)
        return 1
    print("bench_gate fixture test: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
