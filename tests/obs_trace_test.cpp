// Tracer behavior: install/uninstall, span and instant emission, ring
// overwrite accounting, drain ordering, and the Chrome-JSON / text-log
// writers (validated by feeding the JSON back through BuildTraceReport).
// Ends with an engine-integration check that a traced synchronous run
// emits the expected phases.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/checkpoint.hpp"
#include "engine/churn_trace.hpp"
#include "engine/engine.hpp"
#include "obs/trace_report.hpp"
#include "topology/generators.hpp"

namespace tdmd::obs {
namespace {

/// Installs `tracer` for the test's scope; uninstalls on exit even if an
/// assertion fails mid-test.
class ScopedInstall {
 public:
  explicit ScopedInstall(Tracer* tracer) { InstallTracer(tracer); }
  ~ScopedInstall() { InstallTracer(nullptr); }
};

std::size_t Count(const std::string& text, const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t at = text.find(needle); at != std::string::npos;
       at = text.find(needle, at + needle.size())) {
    ++count;
  }
  return count;
}

TEST(ObsTraceTest, NoTracerInstalledIsInert) {
  ASSERT_EQ(CurrentTracer(), nullptr);
  // Hooks must be callable with no tracer; nothing to observe but the
  // absence of a crash.
  TraceInstant(TracePhase::kAdoption, 3);
  { ScopedSpan span(TracePhase::kEpoch, 1); }
  EXPECT_EQ(CurrentTracer(), nullptr);
}

TEST(ObsTraceTest, EmitAndDrainRoundTrip) {
  Tracer tracer;
  ScopedInstall install(&tracer);
  EXPECT_EQ(CurrentTracer(), &tracer);

  TraceInstant(TracePhase::kAdoption, 7);
  {
    ScopedSpan span(TracePhase::kEpoch, 0);
    span.set_arg(42);
  }
  const TraceDrainResult drained = tracer.Drain();
  ASSERT_EQ(drained.events.size(), 2u);
  EXPECT_EQ(drained.dropped, 0u);
  EXPECT_EQ(drained.num_threads, 1u);

  const TraceEvent& instant = drained.events[0];
  EXPECT_EQ(instant.phase, TracePhase::kAdoption);
  EXPECT_FALSE(instant.is_span);
  EXPECT_EQ(instant.arg, 7u);
  EXPECT_EQ(instant.duration_ns, 0u);

  const TraceEvent& span = drained.events[1];
  EXPECT_EQ(span.phase, TracePhase::kEpoch);
  EXPECT_TRUE(span.is_span);
  EXPECT_EQ(span.arg, 42u);
  EXPECT_GE(span.start_ns, instant.start_ns);

  // A second drain starts empty.
  EXPECT_TRUE(tracer.Drain().events.empty());
}

TEST(ObsTraceTest, FullRingOverwritesOldestAndCountsDrops) {
  Tracer tracer(/*ring_capacity=*/4);
  ScopedInstall install(&tracer);
  for (std::uint64_t i = 0; i < 10; ++i) {
    TraceInstant(TracePhase::kCelfPop, i);
  }
  const TraceDrainResult drained = tracer.Drain();
  ASSERT_EQ(drained.events.size(), 4u);
  EXPECT_EQ(drained.dropped, 6u);
  // The survivors are the newest four, oldest-first.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(drained.events[i].arg, 6 + i);
  }
}

TEST(ObsTraceTest, DrainMergesThreadsSortedByTimestamp) {
  Tracer tracer;
  ScopedInstall install(&tracer);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        tracer.Emit(TracePhase::kPoolTaskRun, /*is_span=*/true,
                    tracer.NowNs(), 1, i);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const TraceDrainResult drained = tracer.Drain();
  EXPECT_EQ(drained.events.size(), kThreads * kPerThread);
  EXPECT_EQ(drained.num_threads, static_cast<std::size_t>(kThreads));
  for (std::size_t i = 1; i < drained.events.size(); ++i) {
    EXPECT_GE(drained.events[i].start_ns,
              drained.events[i - 1].start_ns);
  }
}

TEST(ObsTraceTest, ChromeTraceParsesBackThroughTraceReport) {
  Tracer tracer;
  ScopedInstall install(&tracer);
  { ScopedSpan span(TracePhase::kGtpRound, 1); }
  { ScopedSpan span(TracePhase::kGtpRound, 2); }
  TraceInstant(TracePhase::kHatExtract);

  std::ostringstream json;
  WriteChromeTrace(json, tracer.Drain());

  std::istringstream in(json.str());
  const TraceReport report = BuildTraceReport(in);
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_EQ(report.num_events, 3u);
  EXPECT_EQ(report.num_threads, 1u);
  std::map<std::string, std::uint64_t> counts;
  for (const TraceReportRow& row : report.rows) {
    counts[row.name] = row.count;
  }
  EXPECT_EQ(counts["gtp-round"], 2u);
  EXPECT_EQ(counts["hat-extract"], 1u);

  std::ostringstream table;
  WriteTraceReport(table, report);
  EXPECT_NE(table.str().find("gtp-round"), std::string::npos);
}

TEST(ObsTraceTest, TextLogNamesEveryEvent) {
  Tracer tracer;
  ScopedInstall install(&tracer);
  TraceInstant(TracePhase::kModeTransition, 2);
  { ScopedSpan span(TracePhase::kCheckpoint); }

  std::ostringstream log;
  WriteTraceLog(log, tracer.Drain());
  const std::string text = log.str();
  EXPECT_NE(text.find("# tdmd-trace events=2"), std::string::npos);
  EXPECT_NE(text.find("mode-transition"), std::string::npos);
  EXPECT_NE(text.find("checkpoint"), std::string::npos);
}

TEST(ObsTraceTest, TracedEngineRunEmitsExpectedPhases) {
  Rng rng(91);
  const graph::Digraph network = topology::Waxman(20, 0.5, 0.4, rng);
  core::ChurnModel churn;
  churn.arrival_count = 6;
  churn.departure_probability = 0.2;
  Rng trace_rng(92);
  const engine::ChurnTrace trace =
      engine::BuildChurnTrace(network, churn, 6, 0, trace_rng);

  Tracer tracer;
  ScopedInstall install(&tracer);
  engine::EngineOptions options;
  options.k = 4;
  options.synchronous = true;
  engine::Engine eng(network, options);
  std::vector<engine::FlowTicket> active;
  for (const engine::ChurnEpoch& epoch : trace.epochs) {
    std::vector<engine::FlowTicket> departing;
    for (std::size_t position : epoch.departures) {
      departing.push_back(active[position]);
    }
    for (auto it = epoch.departures.rbegin();
         it != epoch.departures.rend(); ++it) {
      active.erase(active.begin() + static_cast<std::ptrdiff_t>(*it));
    }
    const auto result = eng.SubmitBatch(epoch.arrivals, departing);
    active.insert(active.end(), result.tickets.begin(),
                  result.tickets.end());
  }
  (void)eng.Checkpoint();

  const TraceDrainResult drained = tracer.Drain();
  std::map<TracePhase, std::uint64_t> counts;
  for (const TraceEvent& event : drained.events) {
    ++counts[event.phase];
  }
  EXPECT_EQ(counts[TracePhase::kEpoch], trace.epochs.size());
  EXPECT_EQ(counts[TracePhase::kIndexDelta], trace.epochs.size());
  EXPECT_EQ(counts[TracePhase::kPatch], trace.epochs.size());
  EXPECT_GE(counts[TracePhase::kResolveAttempt], 1u);
  EXPECT_GE(counts[TracePhase::kGtpRound], 1u);
  EXPECT_GE(counts[TracePhase::kCelfPop], 1u);
  EXPECT_EQ(counts[TracePhase::kCheckpoint], 1u);
}

TEST(ObsTraceTest, BatchBoundEventsEmitFlowChain) {
  Tracer tracer;
  ScopedInstall install(&tracer);
  // Three spans bound to batch 7 on one thread, one unbound span.
  {
    ScopedSpan span(TracePhase::kFleetSubmit, 2);
    span.set_batch(7);
  }
  {
    ScopedSpan span(TracePhase::kPatch);
    span.set_batch(7);
  }
  TraceInstant(TracePhase::kBatchAdopted, /*arg=*/3, /*batch=*/7);
  { ScopedSpan span(TracePhase::kEpoch, 1); }

  std::ostringstream json;
  WriteChromeTrace(json, tracer.Drain());
  const std::string text = json.str();

  // Every bound event carries its batch id in args; the unbound one
  // must not.
  EXPECT_EQ(Count(text, "\"batch\":7"), 3u);
  // One flow chain per batch id: exactly one start ('s'), one finish
  // ('f'), and the middle event gets a step ('t').
  EXPECT_EQ(Count(text, "\"ph\":\"s\""), 1u);
  EXPECT_EQ(Count(text, "\"ph\":\"t\""), 1u);
  EXPECT_EQ(Count(text, "\"ph\":\"f\""), 1u);
  // Flow records share name/cat "batch" and the batch id as their id.
  EXPECT_NE(text.find("\"cat\":\"batch\""), std::string::npos);
  EXPECT_NE(text.find("\"id\":7"), std::string::npos);
  // The finish record binds at the enclosing slice ("bp":"e").
  EXPECT_NE(text.find("\"bp\":\"e\""), std::string::npos);

  // The JSON still parses back through trace-report (flow records are
  // counted but need no dur).
  std::istringstream in(text);
  const TraceReport report = BuildTraceReport(in);
  ASSERT_TRUE(report.ok) << report.error;
}

TEST(ObsTraceTest, DropTotalSurvivesTracerUninstall) {
  {
    Tracer tracer(/*ring_capacity=*/2);
    ScopedInstall install(&tracer);
    for (std::uint64_t i = 0; i < 8; ++i) {
      TraceInstant(TracePhase::kCelfPop, i);
    }
    // Live tracer answers from its own counter.
    EXPECT_EQ(TraceDropTotal(), 6u);
  }
  // Uninstalled: the latched last-known total keeps answering, so a
  // metrics scrape after serve-trace detaches still sees the drops.
  ASSERT_EQ(CurrentTracer(), nullptr);
  EXPECT_EQ(TraceDropTotal(), 6u);
}

}  // namespace
}  // namespace tdmd::obs
