// Destruction races (run under TSan in CI): tearing an engine down while
// a fault-injected cancellation storm has re-solves, retries and watchdog
// kills in flight must not race, leak, or deadlock.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <vector>

#include "engine/churn_trace.hpp"
#include "engine/engine.hpp"
#include "faults/faults.hpp"
#include "parallel/thread_pool.hpp"
#include "topology/generators.hpp"

namespace tdmd::engine {
namespace {

graph::Digraph TestNetwork(std::uint64_t seed) {
  Rng rng(seed);
  return topology::Waxman(16, 0.5, 0.4, rng);
}

TEST(EngineShutdownStressTest, DestructionDuringCancellationStorm) {
  const graph::Digraph network = TestNetwork(81);
  core::ChurnModel churn;
  churn.arrival_count = 8;
  churn.departure_probability = 0.2;

  for (std::uint64_t round = 0; round < 12; ++round) {
    faults::FaultSpec spec;
    spec.seed = 1000 + round;
    auto& greedy = spec.at(faults::FaultSite::kGreedyRound);
    greedy.throw_probability = 0.15;
    greedy.cancel_probability = 0.25;
    greedy.delay_probability = 0.2;
    greedy.delay = std::chrono::milliseconds(1);
    spec.at(faults::FaultSite::kIndexDelta).throw_probability = 0.1;
    faults::FaultInjector injector(spec);

    EngineOptions options;
    options.k = 4;
    options.synchronous = false;
    options.solver_threads = 2;
    options.fault_injector = &injector;
    options.max_resolve_retries = 2;
    options.retry_backoff_initial = std::chrono::milliseconds(1);
    options.watchdog_interval = std::chrono::milliseconds(1);
    options.stall_timeout = std::chrono::milliseconds(2);

    const ChurnTrace trace =
        BuildChurnTrace(network, churn, 6, 0, /*seed=*/2000 + round);
    {
      Engine engine(network, options);
      std::vector<FlowTicket> active;
      for (const ChurnEpoch& epoch : trace.epochs) {
        std::vector<FlowTicket> departing;
        for (std::size_t position : epoch.departures) {
          ASSERT_LT(position, active.size());
          departing.push_back(active[position]);
        }
        for (auto it = epoch.departures.rbegin();
             it != epoch.departures.rend(); ++it) {
          active.erase(active.begin() +
                       static_cast<std::ptrdiff_t>(*it));
        }
        const Engine::BatchResult result =
            engine.SubmitBatch(epoch.arrivals, departing);
        active.insert(active.end(), result.tickets.begin(),
                      result.tickets.end());
      }
      // No WaitIdle: the destructor must cope with live re-solve chains,
      // pending retries and a running watchdog.
    }
  }
}

// Lost pool tasks: a throwing task hook drops the engine-equivalent
// workload outright.  The pool must stay consistent and its futures must
// report broken_promise rather than hanging.
TEST(EngineShutdownStressTest, PoolSurvivesDroppedTasksDuringShutdown) {
  for (std::uint64_t round = 0; round < 8; ++round) {
    faults::FaultSpec spec;
    spec.seed = 3000 + round;
    spec.at(faults::FaultSite::kPoolTask).throw_probability = 0.5;
    faults::FaultInjector injector(spec);

    parallel::ThreadPool pool(2);
    pool.SetTaskHook([&injector]() {
      injector.MaybeInject(faults::FaultSite::kPoolTask);
    });
    std::vector<std::future<int>> futures;
    futures.reserve(32);
    for (int i = 0; i < 32; ++i) {
      futures.push_back(pool.Submit([i]() { return i; }));
    }
    // Destroy the pool with work possibly still queued; every future must
    // resolve (value or broken_promise), never hang.
    pool.Wait();
    int executed = 0, dropped = 0;
    for (auto& f : futures) {
      try {
        f.get();
        ++executed;
      } catch (const std::future_error&) {
        ++dropped;
      }
    }
    const parallel::ThreadPool::PoolStats stats = pool.stats();
    EXPECT_EQ(static_cast<std::uint64_t>(executed), stats.tasks_executed);
    EXPECT_EQ(static_cast<std::uint64_t>(dropped), stats.tasks_dropped);
    EXPECT_EQ(executed + dropped, 32);
  }
}

}  // namespace
}  // namespace tdmd::engine
