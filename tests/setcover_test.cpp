#include "setcover/set_cover.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace tdmd::setcover {
namespace {

SetCoverInstance PaperFigure2() {
  // Fig. 2: universe {f1..f4}; S1 = {f1, f2, f4}, S2 = {f1, f2},
  // S3 = {f3}.  Minimum cover is {S1, S3}.
  SetCoverInstance sc;
  sc.universe_size = 4;
  sc.sets = {{0, 1, 3}, {0, 1}, {2}};
  return sc;
}

TEST(IsCoverTest, DetectsCompleteAndIncomplete) {
  const SetCoverInstance sc = PaperFigure2();
  EXPECT_TRUE(IsCover(sc, {0, 2}));
  EXPECT_TRUE(IsCover(sc, {0, 1, 2}));
  EXPECT_FALSE(IsCover(sc, {0}));
  EXPECT_FALSE(IsCover(sc, {1, 2}));
  EXPECT_FALSE(IsCover(sc, {}));
}

TEST(GreedyCoverTest, SolvesPaperFigure2) {
  const SetCoverInstance sc = PaperFigure2();
  auto cover = GreedyCover(sc);
  ASSERT_TRUE(cover.has_value());
  EXPECT_TRUE(IsCover(sc, *cover));
  EXPECT_EQ(cover->size(), 2u);  // greedy is optimal here
}

TEST(GreedyCoverTest, UncoverableReturnsNullopt) {
  SetCoverInstance sc;
  sc.universe_size = 3;
  sc.sets = {{0}, {1}};  // element 2 uncovered
  EXPECT_FALSE(GreedyCover(sc).has_value());
}

TEST(GreedyCoverTest, EmptyUniverseNeedsNoSets) {
  SetCoverInstance sc;
  sc.universe_size = 0;
  sc.sets = {{}, {}};
  auto cover = GreedyCover(sc);
  ASSERT_TRUE(cover.has_value());
  EXPECT_TRUE(cover->empty());
}

TEST(ExactCoverTest, MatchesKnownMinimum) {
  const SetCoverInstance sc = PaperFigure2();
  auto minimum = ExactMinimumCover(sc);
  ASSERT_TRUE(minimum.has_value());
  EXPECT_EQ(minimum->size(), 2u);
  EXPECT_TRUE(IsCover(sc, *minimum));
}

TEST(ExactCoverTest, GreedyCanBeBeaten) {
  // Classic greedy-trap: greedy picks the big set first and needs 3 sets;
  // the optimum is the 2 disjoint halves.
  SetCoverInstance sc;
  sc.universe_size = 4;
  sc.sets = {{0, 1, 2}, {0, 1}, {2, 3}};
  auto greedy = GreedyCover(sc);
  auto exact = ExactMinimumCover(sc);
  ASSERT_TRUE(greedy.has_value());
  ASSERT_TRUE(exact.has_value());
  EXPECT_EQ(exact->size(), 2u);
  EXPECT_GE(greedy->size(), exact->size());
}

TEST(ExactCoverTest, UncoverableReturnsNullopt) {
  SetCoverInstance sc;
  sc.universe_size = 2;
  sc.sets = {{0}};
  EXPECT_FALSE(ExactMinimumCover(sc).has_value());
}

TEST(CoverableWithTest, ThresholdBehaviour) {
  const SetCoverInstance sc = PaperFigure2();
  EXPECT_FALSE(CoverableWith(sc, 1));
  EXPECT_TRUE(CoverableWith(sc, 2));
  EXPECT_TRUE(CoverableWith(sc, 3));
}

class GreedyVsExact : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GreedyVsExact, GreedyIsFeasibleAndWithinLnBound) {
  Rng rng(GetParam());
  SetCoverInstance sc;
  sc.universe_size = static_cast<std::size_t>(rng.NextInt(4, 14));
  const auto num_sets = static_cast<std::size_t>(rng.NextInt(3, 10));
  sc.sets.resize(num_sets);
  // Ensure coverability: element i is forced into set i % num_sets.
  for (std::size_t e = 0; e < sc.universe_size; ++e) {
    sc.sets[e % num_sets].push_back(e);
  }
  for (auto& s : sc.sets) {
    for (std::size_t e = 0; e < sc.universe_size; ++e) {
      if (rng.NextBool(0.3)) s.push_back(e);
    }
  }
  auto greedy = GreedyCover(sc);
  auto exact = ExactMinimumCover(sc);
  ASSERT_TRUE(greedy.has_value());
  ASSERT_TRUE(exact.has_value());
  EXPECT_TRUE(IsCover(sc, *greedy));
  EXPECT_GE(greedy->size(), exact->size());
  // H_n bound for n <= 14 is < 3.3x.
  EXPECT_LE(static_cast<double>(greedy->size()),
            3.3 * static_cast<double>(exact->size()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyVsExact,
                         ::testing::Range<std::uint64_t>(1, 16));

TEST(SetCoverDeathTest, ElementOutOfUniverseAborts) {
  SetCoverInstance sc;
  sc.universe_size = 2;
  sc.sets = {{0, 5}};
  EXPECT_DEATH(GreedyCover(sc), "outside universe");
}

}  // namespace
}  // namespace tdmd::setcover
