#include "engine/coverage_index.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "core/dynamic.hpp"
#include "engine/churn_trace.hpp"
#include "test_util.hpp"
#include "topology/generators.hpp"

namespace tdmd::engine {
namespace {

graph::Digraph TestNetwork(std::uint64_t seed, VertexId n = 20) {
  Rng rng(seed);
  return topology::Waxman(n, 0.5, 0.4, rng);
}

traffic::Flow MakeFlow(const graph::Digraph& network, VertexId src,
                       VertexId dst, Rate rate) {
  traffic::Flow flow;
  flow.src = src;
  flow.dst = dst;
  flow.rate = rate;
  auto path = graph::ShortestHopPath(network, src, dst);
  EXPECT_TRUE(path.has_value());
  flow.path = std::move(*path);
  return flow;
}

/// Canonical content of an index: per vertex, the sorted multiset of
/// (src, dst, rate, path_index) over its visits — insensitive to the
/// swap-erase ordering the incremental maintenance produces.
using VertexVisits =
    std::vector<std::vector<std::tuple<VertexId, VertexId, Rate,
                                       std::int32_t>>>;

VertexVisits Canonicalize(const FlowCoverageIndex& index) {
  VertexVisits result(static_cast<std::size_t>(index.num_vertices()));
  for (VertexId v = 0; v < index.num_vertices(); ++v) {
    for (const FlowCoverageIndex::Visit& visit : index.FlowsThrough(v)) {
      const traffic::Flow& flow = index.FlowAt(visit.slot);
      result[static_cast<std::size_t>(v)].emplace_back(
          flow.src, flow.dst, flow.rate, visit.path_index);
    }
    std::sort(result[static_cast<std::size_t>(v)].begin(),
              result[static_cast<std::size_t>(v)].end());
  }
  return result;
}

/// From-scratch rebuild: a fresh index fed only the active flows.
FlowCoverageIndex Rebuild(const FlowCoverageIndex& index) {
  FlowCoverageIndex fresh(index.network(), index.lambda());
  for (FlowTicket ticket : index.ActiveTickets()) {
    fresh.AddFlow(*index.Find(ticket));
  }
  return fresh;
}

TEST(FlowCoverageIndexTest, AddIndexesEveryPathVertex) {
  graph::Digraph network = TestNetwork(1);
  FlowCoverageIndex index(network, 0.5);
  const traffic::Flow flow = MakeFlow(network, 7, 0, 3);
  const FlowTicket ticket = index.AddFlow(flow);
  ASSERT_NE(ticket, kInvalidTicket);
  EXPECT_EQ(index.active_flows(), 1u);
  EXPECT_DOUBLE_EQ(index.unprocessed_bandwidth(),
                   3.0 * static_cast<double>(flow.PathEdges()));
  for (std::size_t i = 0; i < flow.path.vertices.size(); ++i) {
    const auto& visits = index.FlowsThrough(flow.path.vertices[i]);
    ASSERT_EQ(visits.size(), 1u);
    EXPECT_EQ(visits[0].path_index, static_cast<std::int32_t>(i));
  }
}

TEST(FlowCoverageIndexTest, RemoveIsExactInverse) {
  graph::Digraph network = TestNetwork(2);
  FlowCoverageIndex index(network, 0.5);
  const FlowTicket keep = index.AddFlow(MakeFlow(network, 5, 0, 2));
  const VertexVisits before = Canonicalize(index);
  const Bandwidth bandwidth_before = index.unprocessed_bandwidth();

  const FlowTicket transient = index.AddFlow(MakeFlow(network, 9, 0, 4));
  EXPECT_EQ(index.active_flows(), 2u);
  EXPECT_TRUE(index.RemoveFlow(transient));
  EXPECT_EQ(index.active_flows(), 1u);
  EXPECT_EQ(Canonicalize(index), before);
  EXPECT_DOUBLE_EQ(index.unprocessed_bandwidth(), bandwidth_before);
  EXPECT_NE(index.Find(keep), nullptr);
}

TEST(FlowCoverageIndexTest, StaleTicketsAreRejected) {
  graph::Digraph network = TestNetwork(3);
  FlowCoverageIndex index(network, 0.5);
  const FlowTicket ticket = index.AddFlow(MakeFlow(network, 4, 0, 1));
  EXPECT_TRUE(index.RemoveFlow(ticket));
  // Double-remove, invalid and recycled-slot tickets must all be no-ops.
  EXPECT_FALSE(index.RemoveFlow(ticket));
  EXPECT_FALSE(index.RemoveFlow(kInvalidTicket));
  EXPECT_EQ(index.Find(ticket), nullptr);

  const FlowTicket recycled = index.AddFlow(MakeFlow(network, 6, 0, 2));
  EXPECT_NE(recycled, ticket);  // generation bumped
  EXPECT_FALSE(index.RemoveFlow(ticket));
  EXPECT_EQ(index.active_flows(), 1u);
  EXPECT_NE(index.Find(recycled), nullptr);
}

TEST(FlowCoverageIndexTest, SlotsAreRecycled) {
  graph::Digraph network = TestNetwork(4);
  FlowCoverageIndex index(network, 0.5);
  std::vector<FlowTicket> tickets;
  for (int i = 0; i < 8; ++i) {
    tickets.push_back(index.AddFlow(MakeFlow(network, 10, 0, 1)));
  }
  const std::size_t high_water = index.num_slots();
  for (FlowTicket t : tickets) EXPECT_TRUE(index.RemoveFlow(t));
  for (int round = 0; round < 4; ++round) {
    std::vector<FlowTicket> batch;
    for (int i = 0; i < 8; ++i) {
      batch.push_back(index.AddFlow(MakeFlow(network, 10, 0, 1)));
    }
    for (FlowTicket t : batch) EXPECT_TRUE(index.RemoveFlow(t));
  }
  EXPECT_EQ(index.num_slots(), high_water);  // no unbounded growth
  EXPECT_EQ(index.active_flows(), 0u);
}

TEST(FlowCoverageIndexTest, DeltaOpsCountVisitEntries) {
  graph::Digraph network = TestNetwork(5);
  FlowCoverageIndex index(network, 0.5);
  const traffic::Flow flow = MakeFlow(network, 11, 0, 2);
  const std::size_t path_vertices = flow.path.vertices.size();
  const FlowTicket ticket = index.AddFlow(flow);
  EXPECT_EQ(index.stats().delta_ops, path_vertices);
  EXPECT_TRUE(index.RemoveFlow(ticket));
  EXPECT_EQ(index.stats().delta_ops, 2 * path_vertices);
  EXPECT_EQ(index.stats().arrivals, 1u);
  EXPECT_EQ(index.stats().departures, 1u);
}

TEST(FlowCoverageIndexTest, BuildInstanceMatchesActiveFlows) {
  graph::Digraph network = TestNetwork(6);
  FlowCoverageIndex index(network, 0.25);
  index.AddFlow(MakeFlow(network, 3, 0, 2));
  const FlowTicket doomed = index.AddFlow(MakeFlow(network, 8, 0, 5));
  index.AddFlow(MakeFlow(network, 12, 0, 1));
  index.RemoveFlow(doomed);

  const core::Instance instance = index.BuildInstance();
  EXPECT_EQ(instance.num_flows(), 2);
  EXPECT_DOUBLE_EQ(instance.UnprocessedBandwidth(),
                   index.unprocessed_bandwidth());
  EXPECT_DOUBLE_EQ(instance.lambda(), index.lambda());
  // The reverse indices agree vertex by vertex (as multisets).
  FlowCoverageIndex from_instance(network, index.lambda());
  for (FlowId f = 0; f < instance.num_flows(); ++f) {
    from_instance.AddFlow(instance.flow(f));
  }
  EXPECT_EQ(Canonicalize(from_instance), Canonicalize(index));
}

// The ISSUE's churn soak: after 50 arrival/departure epochs the
// incrementally maintained index must equal a from-scratch rebuild.
TEST(FlowCoverageIndexSoakTest, FiftyEpochsMatchRebuild) {
  graph::Digraph network = TestNetwork(7, 24);
  FlowCoverageIndex index(network, 0.37);  // non-dyadic lambda on purpose
  core::ChurnModel churn;
  churn.arrival_count = 12;
  churn.departure_probability = 0.3;
  Rng rng(99);
  const ChurnTrace trace = BuildChurnTrace(network, churn, 50, 0, rng);

  std::vector<FlowTicket> active;
  for (const ChurnEpoch& epoch : trace.epochs) {
    // Departures index the pre-arrival active list, ascending; erase from
    // the back so earlier indices stay valid.
    for (auto it = epoch.departures.rbegin(); it != epoch.departures.rend();
         ++it) {
      ASSERT_LT(*it, active.size());
      ASSERT_TRUE(index.RemoveFlow(active[*it]));
      active.erase(active.begin() + static_cast<std::ptrdiff_t>(*it));
    }
    for (const traffic::Flow& flow : epoch.arrivals) {
      active.push_back(index.AddFlow(flow));
    }
  }

  ASSERT_EQ(index.active_flows(), active.size());
  ASSERT_EQ(active.size(), trace.FinalActiveCount(0));
  const FlowCoverageIndex rebuilt = Rebuild(index);
  EXPECT_EQ(Canonicalize(index), Canonicalize(rebuilt));
  EXPECT_NEAR(index.unprocessed_bandwidth(),
              rebuilt.unprocessed_bandwidth(), 1e-9);
  EXPECT_GT(index.stats().delta_ops, 0u);
}

}  // namespace
}  // namespace tdmd::engine
