// TSan-targeted stress: pool workers and the client thread emit trace
// events while a separate thread drains the tracer, across engine
// churn, checkpoint capture, and engine shutdown.  The CI tsan job runs
// this suite (with EngineShutdownStress) to certify the tracer's
// lock-light rings: every drain must be well-formed — timestamps
// monotone after the (start_ns, tid) sort, dense thread ids — with no
// data-race reports.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "engine/checkpoint.hpp"
#include "engine/churn_trace.hpp"
#include "engine/engine.hpp"
#include "topology/generators.hpp"

namespace tdmd::obs {
namespace {

/// Checks one drain result for well-formedness; returns the number of
/// violations so worker threads can report without gtest ASSERTs.
std::uint64_t CountViolations(const TraceDrainResult& drained) {
  std::uint64_t violations = 0;
  for (std::size_t i = 0; i < drained.events.size(); ++i) {
    const TraceEvent& event = drained.events[i];
    if (event.tid >= drained.num_threads) ++violations;
    if (!event.is_span && event.duration_ns != 0) ++violations;
    if (i > 0 && event.start_ns < drained.events[i - 1].start_ns) {
      ++violations;
    }
  }
  return violations;
}

TEST(ObsTraceStress, ConcurrentEmissionDuringChurnAndShutdown) {
  Rng rng(97);
  const graph::Digraph network = topology::Waxman(18, 0.5, 0.4, rng);
  core::ChurnModel churn;
  churn.arrival_count = 10;
  churn.departure_probability = 0.25;

  for (int iteration = 0; iteration < 3; ++iteration) {
    // Small rings so wrap-around happens under load, exercising the
    // overwrite path concurrently with Drain.
    Tracer tracer(/*ring_capacity=*/256);
    InstallTracer(&tracer);

    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> violations{0};
    std::atomic<std::uint64_t> drained_events{0};
    std::thread drainer([&] {
      while (!stop.load(std::memory_order_acquire)) {
        const TraceDrainResult drained = tracer.Drain();
        violations.fetch_add(CountViolations(drained));
        drained_events.fetch_add(drained.events.size());
        std::this_thread::yield();
      }
    });

    {
      engine::EngineOptions options;
      options.k = 4;
      options.synchronous = false;
      options.solver_threads = 2;
      engine::Engine eng(network, options);

      Rng trace_rng(98 + static_cast<std::uint64_t>(iteration));
      const engine::ChurnTrace trace =
          engine::BuildChurnTrace(network, churn, 12, 0, trace_rng);
      std::vector<engine::FlowTicket> active;
      std::size_t epoch_index = 0;
      for (const engine::ChurnEpoch& epoch : trace.epochs) {
        std::vector<engine::FlowTicket> departing;
        for (std::size_t position : epoch.departures) {
          departing.push_back(active[position]);
        }
        for (auto it = epoch.departures.rbegin();
             it != epoch.departures.rend(); ++it) {
          active.erase(active.begin() +
                       static_cast<std::ptrdiff_t>(*it));
        }
        const auto result = eng.SubmitBatch(epoch.arrivals, departing);
        active.insert(active.end(), result.tickets.begin(),
                      result.tickets.end());
        if (++epoch_index % 4 == 0) {
          (void)eng.Checkpoint();  // kCheckpoint spans under load
        }
      }
      // Engine destruction joins the pool mid-traffic: workers emit
      // their final spans during shutdown while the drainer keeps
      // draining.
    }

    InstallTracer(nullptr);
    stop.store(true, std::memory_order_release);
    drainer.join();

    const TraceDrainResult final_drain = tracer.Drain();
    violations.fetch_add(CountViolations(final_drain));
    drained_events.fetch_add(final_drain.events.size());

    EXPECT_EQ(violations.load(), 0u) << "iteration " << iteration;
    EXPECT_GE(drained_events.load() + final_drain.dropped, 1u);
  }
}

}  // namespace
}  // namespace tdmd::obs
