// Sanity-checks the MemoryFootprint() capacity accounting against the
// allocator itself: a counting global operator new/delete (glibc
// malloc_usable_size) tracks live heap bytes, and the footprint reported
// by FlowCoverageIndex must land within 25% of the measured delta of
// building one.  Also covers the MpscQueue node accounting and the
// tdmd_mem_* / tdmd_build_info / tdmd_profile_* gauges in the engine's
// Prometheus exposition.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <sstream>
#include <string>
#include <utility>

#include "engine/coverage_index.hpp"
#include "engine/engine.hpp"
#include "obs/metrics.hpp"
#include "shard/mpsc_queue.hpp"
#include "test_util.hpp"
#include "topology/generators.hpp"

#if defined(__GLIBC__)
#include <malloc.h>
#define TDMD_HAVE_USABLE_SIZE 1
#else
#define TDMD_HAVE_USABLE_SIZE 0
#endif

namespace {

// Live heap bytes as the allocator sees them (usable chunk sizes, so
// malloc's bin rounding is included on both sides of a delta).
std::atomic<std::size_t> g_live_bytes{0};

std::size_t UsableSize(void* ptr) {
#if TDMD_HAVE_USABLE_SIZE
  return malloc_usable_size(ptr);
#else
  (void)ptr;
  return 0;
#endif
}

void* CountedAlloc(std::size_t size) {
  void* ptr = std::malloc(size);
  if (ptr == nullptr) throw std::bad_alloc();
  g_live_bytes.fetch_add(UsableSize(ptr), std::memory_order_relaxed);
  return ptr;
}

void CountedFree(void* ptr) noexcept {
  if (ptr == nullptr) return;
  g_live_bytes.fetch_sub(UsableSize(ptr), std::memory_order_relaxed);
  std::free(ptr);
}

}  // namespace

// Replaceable global allocation functions.  Alignment note: the repo's
// hot structures carry no over-aligned members, so plain malloc (16-byte
// aligned on glibc) satisfies every request this binary makes; the
// aligned overloads still CHECK the assumption.
void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  if (static_cast<std::size_t>(align) > alignof(std::max_align_t)) {
    std::abort();  // would silently under-align; no caller should hit this
  }
  return CountedAlloc(size);
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return operator new(size, align);
}
void operator delete(void* ptr) noexcept { CountedFree(ptr); }
void operator delete[](void* ptr) noexcept { CountedFree(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { CountedFree(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { CountedFree(ptr); }
void operator delete(void* ptr, std::align_val_t) noexcept {
  CountedFree(ptr);
}
void operator delete[](void* ptr, std::align_val_t) noexcept {
  CountedFree(ptr);
}
void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept {
  CountedFree(ptr);
}
void operator delete[](void* ptr, std::size_t, std::align_val_t) noexcept {
  CountedFree(ptr);
}

namespace tdmd::engine {
namespace {

TEST(ObsMemFootprint, CoverageIndexWithin25PercentOfAllocatorDelta) {
#if !TDMD_HAVE_USABLE_SIZE
  GTEST_SKIP() << "malloc_usable_size unavailable; cannot measure deltas";
#endif
  // Build the inputs before measuring so only the index's own ownership
  // (including its copy of the network) lands inside the delta.
  Rng rng(7);
  const core::Instance instance =
      test::MakeRandomGeneralCase(120, 0.5, 4000, rng);

  const std::size_t before = g_live_bytes.load(std::memory_order_relaxed);
  auto index = std::make_unique<FlowCoverageIndex>(
      graph::Digraph(instance.network()), instance.lambda());
  for (const traffic::Flow& flow : instance.flows()) {
    (void)index->AddFlow(flow);
  }
  const std::size_t after = g_live_bytes.load(std::memory_order_relaxed);
  ASSERT_GT(after, before);
  const std::size_t delta = after - before - sizeof(FlowCoverageIndex);

  const std::size_t footprint = index->MemoryFootprint();
  ASSERT_GT(footprint, 0u);
  // |footprint - delta| <= 25% of delta, per the tdmd_mem_* contract
  // (DESIGN.md 16.2).  The footprint undercounts allocator chunk
  // headers and overcounts nothing, so it normally sits just below.
  EXPECT_GE(footprint * 4, delta * 3)
      << "footprint " << footprint << " vs allocator delta " << delta;
  EXPECT_LE(footprint * 4, delta * 5)
      << "footprint " << footprint << " vs allocator delta " << delta;

  // Removing every flow must not grow the accounted capacity, and the
  // allocator must agree the index still owns everything it reports.
  index.reset();
  const std::size_t freed = g_live_bytes.load(std::memory_order_relaxed);
  EXPECT_LE(freed, before + 1024)  // transient STL scratch tolerance
      << "index destruction leaked " << (freed - before) << " bytes";
}

TEST(ObsMemFootprint, MpscQueueFootprintTracksOccupancy) {
  shard::MpscQueue<std::uint64_t> queue;
  EXPECT_EQ(queue.MemoryFootprint(), 0u);
  constexpr std::size_t kPushes = 100;
  for (std::uint64_t i = 0; i < kPushes; ++i) queue.Push(i);
  // One node allocation per queued command.
  EXPECT_GE(queue.MemoryFootprint(),
            kPushes * (sizeof(std::uint64_t) + sizeof(void*)));
  EXPECT_EQ(queue.MemoryFootprint() % kPushes, 0u);
  std::uint64_t out = 0;
  std::size_t popped = 0;
  while (queue.Pop(out)) ++popped;
  EXPECT_EQ(popped, kPushes);
  EXPECT_EQ(queue.MemoryFootprint(), 0u);
}

TEST(ObsMemFootprint, EngineExposesMemoryBuildInfoAndProfilerGauges) {
  Rng rng(11);
  const core::Instance instance =
      test::MakeRandomGeneralCase(40, 0.5, 300, rng);
  EngineOptions options;
  options.k = 6;
  options.synchronous = true;
  Engine eng(instance.network(), options);
  (void)eng.SubmitBatch(instance.flows(), {});

  const EngineMemoryStats stats = eng.MemoryUsage();
  EXPECT_GT(stats.index_bytes, 0u);
  EXPECT_GT(stats.snapshot_bytes, 0u);
  EXPECT_EQ(stats.active_flows, instance.flows().size());

  std::ostringstream os;
  eng.DumpMetrics(os, obs::MetricsFormat::kPrometheus);
  const std::string exposition = os.str();
  for (const char* needle :
       {"tdmd_mem_index_bytes", "tdmd_mem_snapshot_bytes",
        "tdmd_mem_active_flows", "tdmd_mem_bytes_per_flow",
        "tdmd_build_info{", "tdmd_profile_samples_total",
        "tdmd_profile_dropped_total"}) {
    EXPECT_NE(exposition.find(needle), std::string::npos)
        << "exposition lacks " << needle;
  }
}

}  // namespace
}  // namespace tdmd::engine
