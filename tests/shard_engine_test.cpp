// ShardedEngine coordinator behavior: exactly-once flow accounting across
// shards, single-shard parity with the plain engine, budget reallocation,
// degraded-mode aggregation and the merged metrics exposition
// (DESIGN.md Section 13).
#include "shard/sharded_engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "engine/churn_trace.hpp"
#include "engine/engine.hpp"
#include "faults/faults.hpp"
#include "graph/shortest_path.hpp"
#include "obs/metrics.hpp"
#include "shard/partition.hpp"
#include "topology/generators.hpp"

namespace tdmd::shard {
namespace {

graph::Digraph TestNetwork(std::uint64_t seed, VertexId n = 40) {
  Rng rng(seed);
  return topology::Waxman(n, 0.5, 0.4, rng);
}

engine::ChurnTrace MakeTrace(const graph::Digraph& g, std::size_t epochs,
                             std::uint64_t seed) {
  core::ChurnModel churn;
  churn.arrival_count = 6;
  churn.departure_probability = 0.3;
  return engine::BuildChurnTrace(g, churn, epochs, 0, seed);
}

/// Replays trace epochs [from, to) into the fleet, maintaining the
/// positional active-id list the trace's departure indices refer to.
void ReplayFleet(ShardedEngine& fleet, const engine::ChurnTrace& trace,
                 std::size_t from, std::size_t to,
                 std::vector<FlowId64>& active) {
  for (std::size_t e = from; e < to; ++e) {
    const engine::ChurnEpoch& epoch = trace.epochs[e];
    std::vector<FlowId64> departures;
    departures.reserve(epoch.departures.size());
    for (const std::size_t index : epoch.departures) {
      departures.push_back(active[index]);
    }
    for (auto it = epoch.departures.rbegin(); it != epoch.departures.rend();
         ++it) {
      active.erase(active.begin() + static_cast<std::ptrdiff_t>(*it));
    }
    const ShardedEngine::BatchResult result =
        fleet.SubmitBatch(epoch.arrivals, departures);
    active.insert(active.end(), result.flow_ids.begin(),
                  result.flow_ids.end());
  }
  fleet.Drain();
}

/// Same replay against a plain engine (positional tickets).
void ReplayEngine(engine::Engine& eng, const engine::ChurnTrace& trace,
                  std::size_t from, std::size_t to,
                  std::vector<engine::FlowTicket>& active) {
  for (std::size_t e = from; e < to; ++e) {
    const engine::ChurnEpoch& epoch = trace.epochs[e];
    std::vector<engine::FlowTicket> departures;
    departures.reserve(epoch.departures.size());
    for (const std::size_t index : epoch.departures) {
      departures.push_back(active[index]);
    }
    for (auto it = epoch.departures.rbegin(); it != epoch.departures.rend();
         ++it) {
      active.erase(active.begin() + static_cast<std::ptrdiff_t>(*it));
    }
    const engine::Engine::BatchResult result =
        eng.SubmitBatch(epoch.arrivals, departures);
    active.insert(active.end(), result.tickets.begin(),
                  result.tickets.end());
  }
  eng.WaitIdle();
}

ShardedEngineOptions FleetOptions(std::size_t shards, std::size_t budget) {
  ShardedEngineOptions options;
  options.partition.num_shards = shards;
  options.total_budget = budget;
  options.engine.lambda = 0.5;
  options.engine.move_threshold = 0.0;
  options.realloc_interval_epochs = 0;  // data path only, unless a test opts in
  options.pin_threads = false;
  return options;
}

TEST(ShardEngineTest, ExactlyOnceFlowAccounting) {
  const graph::Digraph g = TestNetwork(41);
  const engine::ChurnTrace trace = MakeTrace(g, 10, 7);
  ShardedEngine fleet(g, FleetOptions(3, 9));

  std::vector<FlowId64> active;
  ReplayFleet(fleet, trace, 0, trace.epochs.size(), active);
  ASSERT_FALSE(active.empty());
  // The workload must actually exercise cross-shard paths, or the
  // exactly-once property is vacuous.
  EXPECT_GT(fleet.stats().cross_shard_flows, 0u);

  const FleetSnapshot snapshot = fleet.Snapshot();
  std::size_t snapshot_flows = 0;
  for (const ShardStatus& shard : snapshot.shards) {
    snapshot_flows += shard.active_flows;
  }
  EXPECT_EQ(snapshot_flows, active.size());

  const FleetCheckpoint cp = fleet.Checkpoint();
  ASSERT_EQ(cp.flows.size(), active.size());

  // Every live flow appears in the routing table exactly once (ids
  // strictly ascending) and in exactly one shard's engine.
  std::size_t engine_flows = 0;
  for (const engine::EngineCheckpoint& ecp : cp.engines) {
    engine_flows += ecp.active_flows.size();
  }
  EXPECT_EQ(engine_flows, cp.flows.size());

  for (std::size_t i = 0; i < cp.flows.size(); ++i) {
    const FleetCheckpoint::FlowEntry& entry = cp.flows[i];
    if (i > 0) {
      EXPECT_LT(cp.flows[i - 1].id, entry.id);
    }
    ASSERT_LT(entry.shard, cp.engines.size());
    // The flow lives in its owner shard's engine (by ticket), and the
    // owner is the partition's deterministic pin for that flow.
    std::size_t hits = 0;
    for (const auto& af : cp.engines[entry.shard].active_flows) {
      if (af.ticket == entry.ticket) {
        ++hits;
        EXPECT_EQ(OwnerShard(fleet.partition(), af.flow, entry.id),
                  entry.shard);
      }
    }
    EXPECT_EQ(hits, 1u) << "flow " << entry.id;
  }

  // Union bandwidth never exceeds the sum of the disjoint per-shard
  // accounts (a shard's flow may be served even better by another
  // shard's box on its path, never worse).
  Bandwidth shard_sum = 0.0;
  for (const ShardStatus& shard : snapshot.shards) {
    shard_sum += shard.bandwidth;
  }
  EXPECT_LE(snapshot.bandwidth, shard_sum + 1e-9);
}

TEST(ShardEngineTest, SingleShardMatchesPlainEngine) {
  const graph::Digraph g = TestNetwork(43, 25);
  const engine::ChurnTrace trace = MakeTrace(g, 8, 11);

  ShardedEngineOptions options = FleetOptions(1, 5);
  ShardedEngine fleet(g, options);
  std::vector<FlowId64> fleet_active;
  ReplayFleet(fleet, trace, 0, trace.epochs.size(), fleet_active);

  // The plain engine with the fleet's effective per-shard options: the
  // whole budget, synchronous, single-threaded.
  engine::EngineOptions plain = options.engine;
  plain.k = options.total_budget;
  plain.synchronous = true;
  plain.solver_threads = 1;
  engine::Engine eng(g, plain);
  std::vector<engine::FlowTicket> engine_active;
  ReplayEngine(eng, trace, 0, trace.epochs.size(), engine_active);

  ASSERT_EQ(fleet_active.size(), engine_active.size());
  const FleetSnapshot fleet_snap = fleet.Snapshot();
  const auto engine_snap = eng.CurrentSnapshot();
  EXPECT_EQ(fleet_snap.epoch, engine_snap->epoch);
  EXPECT_EQ(fleet_snap.feasible, engine_snap->feasible);
  EXPECT_NEAR(fleet_snap.bandwidth, engine_snap->bandwidth, 1e-9);
  EXPECT_EQ(fleet_snap.deployment.ToString(),
            engine_snap->deployment.ToString());
  ASSERT_EQ(fleet_snap.shards.size(), 1u);
  EXPECT_EQ(fleet_snap.shards[0].budget, options.total_budget);
  EXPECT_EQ(fleet_snap.shards[0].active_flows, engine_active.size());
}

TEST(ShardEngineTest, SkipsShardsWithoutEvents) {
  const graph::Digraph g = TestNetwork(47);
  ShardedEngineOptions options = FleetOptions(2, 6);
  ShardedEngine fleet(g, options);
  const Partition& partition = fleet.partition();

  // Flows wholly inside shard 0's region: shard 1 must receive nothing.
  traffic::FlowSet arrivals;
  Rng rng(5);
  while (arrivals.size() < 6) {
    const auto src = static_cast<VertexId>(
        rng.NextBounded(static_cast<std::uint64_t>(g.num_vertices())));
    const auto dst = static_cast<VertexId>(
        rng.NextBounded(static_cast<std::uint64_t>(g.num_vertices())));
    if (src == dst) continue;
    const auto path = graph::ShortestHopPath(g, src, dst);
    if (!path.has_value() || path->NumEdges() == 0) continue;
    traffic::Flow flow;
    flow.src = src;
    flow.dst = dst;
    flow.rate = 4;
    flow.path = *path;
    if (ShardsTouched(partition, flow) != 1) continue;
    if (partition.shard(src) != 0) continue;
    arrivals.push_back(std::move(flow));
  }

  const std::size_t epochs = 4;
  for (std::size_t e = 0; e < epochs; ++e) {
    fleet.SubmitBatch(arrivals, {});
  }
  fleet.Drain();
  // One skipped shard-epoch per epoch: shard 1 never saw a command.
  EXPECT_EQ(fleet.stats().batches_skipped, epochs);
  EXPECT_EQ(fleet.stats().commands_routed, epochs);
  const FleetSnapshot snapshot = fleet.Snapshot();
  EXPECT_EQ(snapshot.shards[1].epochs, 0u);
  EXPECT_EQ(snapshot.shards[1].active_flows, 0u);
}

TEST(ShardEngineTest, BudgetReallocationShiftsTowardLoad) {
  const graph::Digraph g = TestNetwork(53);
  ShardedEngineOptions options = FleetOptions(2, 6);
  options.realloc_interval_epochs = 2;
  options.realloc_hysteresis = 0.0;
  ShardedEngine fleet(g, options);
  const Partition& partition = fleet.partition();
  EXPECT_EQ(fleet.budgets(), (std::vector<std::size_t>{3, 3}));

  // All traffic lands in shard 0; shard 1's marginal curve is empty, so
  // the greedy merge should concentrate the budget on shard 0.
  traffic::FlowSet arrivals;
  Rng rng(9);
  while (arrivals.size() < 8) {
    const auto src = static_cast<VertexId>(
        rng.NextBounded(static_cast<std::uint64_t>(g.num_vertices())));
    const auto dst = static_cast<VertexId>(
        rng.NextBounded(static_cast<std::uint64_t>(g.num_vertices())));
    if (src == dst) continue;
    const auto path = graph::ShortestHopPath(g, src, dst);
    if (!path.has_value() || path->NumEdges() == 0) continue;
    traffic::Flow flow;
    flow.src = src;
    flow.dst = dst;
    flow.rate = 6;
    flow.path = *path;
    if (ShardsTouched(partition, flow) != 1) continue;
    if (partition.shard(src) != 0) continue;
    arrivals.push_back(std::move(flow));
  }

  for (std::size_t e = 0; e < 6; ++e) {
    fleet.SubmitBatch(arrivals, {});
  }
  fleet.Drain();

  EXPECT_GE(fleet.stats().realloc_rounds, 1u);
  EXPECT_GE(fleet.stats().realloc_adoptions, 1u);
  const std::vector<std::size_t>& budgets = fleet.budgets();
  ASSERT_EQ(budgets.size(), 2u);
  EXPECT_EQ(budgets[0] + budgets[1], options.total_budget);
  EXPECT_GE(budgets[1], 1u);  // every shard keeps at least one box
  EXPECT_GT(budgets[0], budgets[1]);

  // The adopted split is already live: no shard holds more boxes than
  // its (possibly shrunk) budget.
  const FleetSnapshot snapshot = fleet.Snapshot();
  for (std::size_t s = 0; s < snapshot.shards.size(); ++s) {
    EXPECT_LE(snapshot.shards[s].boxes, snapshot.shards[s].budget)
        << "shard " << s;
    EXPECT_EQ(snapshot.shards[s].budget, budgets[s]);
  }
  EXPECT_TRUE(snapshot.feasible);
}

TEST(ShardEngineTest, FleetModeIsWorstShardMode) {
  const graph::Digraph g = TestNetwork(59);
  const engine::ChurnTrace trace = MakeTrace(g, 6, 13);

  ShardedEngineOptions options = FleetOptions(2, 6);
  // Every re-solve throws on every shard: each engine that sees traffic
  // walks NORMAL -> DEGRADED -> PATCH_ONLY while the synchronous patch
  // keeps coverage feasible.
  options.inject_faults = true;
  options.fault_spec.seed = 71;
  options.fault_spec.at(faults::FaultSite::kGreedyRound).throw_probability =
      1.0;
  options.engine.max_resolve_retries = 1;
  options.engine.degrade_after_failures = 1;
  options.engine.patch_only_after_failures = 2;
  options.engine.probe_interval_epochs = 64;
  ShardedEngine fleet(g, options);

  std::vector<FlowId64> active;
  ReplayFleet(fleet, trace, 0, trace.epochs.size(), active);

  const FleetSnapshot snapshot = fleet.Snapshot();
  engine::EngineMode worst = engine::EngineMode::kNormal;
  bool any_degraded = false;
  for (const ShardStatus& shard : snapshot.shards) {
    worst = std::max(worst, shard.mode);
    any_degraded = any_degraded || shard.mode != engine::EngineMode::kNormal;
  }
  EXPECT_TRUE(any_degraded);
  EXPECT_EQ(snapshot.mode, worst);
  EXPECT_NE(snapshot.mode, engine::EngineMode::kNormal);
  // Feasibility survives: the patch path does not go through the solver.
  EXPECT_TRUE(snapshot.feasible);
}

TEST(ShardEngineTest, MetricsExposeFleetAndPerShardSeries) {
  const graph::Digraph g = TestNetwork(61);
  const engine::ChurnTrace trace = MakeTrace(g, 5, 17);
  ShardedEngine fleet(g, FleetOptions(2, 6));
  std::vector<FlowId64> active;
  ReplayFleet(fleet, trace, 0, trace.epochs.size(), active);

  std::ostringstream prom;
  fleet.DumpMetrics(prom, obs::MetricsFormat::kPrometheus);
  const std::string text = prom.str();
  for (const char* needle :
       {"tdmd_fleet_num_shards 2", "tdmd_fleet_epochs", "tdmd_fleet_bandwidth",
        "tdmd_fleet_cert_bound", "tdmd_fleet_cross_shard_flows",
        "tdmd_shard0_budget", "tdmd_shard0_active_flows",
        "tdmd_shard1_bandwidth", "tdmd_shard1_mode"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }
}

}  // namespace
}  // namespace tdmd::shard
