// Malformed-input corpus for the text formats: every record here must
// produce an error (with a line number where applicable) and never a
// partially filled object.
#include "io/text_format.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

namespace tdmd::io {
namespace {

template <typename T>
void ExpectRejected(const Parsed<T>& parsed, const std::string& what) {
  EXPECT_FALSE(parsed.ok()) << "accepted: " << what;
  EXPECT_FALSE(parsed.error.empty()) << what;
  EXPECT_FALSE(parsed.value.has_value()) << what;
}

Parsed<core::Instance> ParseInstance(const std::string& text) {
  std::istringstream iss(text);
  return ReadInstance(iss);
}

Parsed<graph::Tree> ParseTree(const std::string& text) {
  std::istringstream iss(text);
  return ReadTree(iss);
}

constexpr char kGoodInstance[] =
    "tdmd-instance v1\n"
    "lambda 0.5\n"
    "digraph 3\n"
    "arc 0 1\n"
    "arc 1 2\n"
    "flows 1\n"
    "flow 4 0 1 2\n";

TEST(TextFormatCorpusTest, AcceptsTheReferenceInstance) {
  const Parsed<core::Instance> parsed = ParseInstance(kGoodInstance);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(parsed.value->flows().size(), 1u);
}

TEST(TextFormatCorpusTest, TruncatedRecordsAreRejected) {
  ExpectRejected(ParseInstance(""), "empty file");
  ExpectRejected(ParseInstance("tdmd-instance v1\n"), "header only");
  ExpectRejected(ParseInstance("tdmd-instance v1\nlambda 0.5\n"),
                 "missing digraph");
  ExpectRejected(
      ParseInstance("tdmd-instance v1\nlambda 0.5\ndigraph 3\narc 0 1\n"),
      "missing flows section");
  ExpectRejected(
      ParseInstance("tdmd-instance v1\nlambda 0.5\ndigraph 3\n"
                    "arc 0 1\narc 1 2\nflows 2\nflow 4 0 1 2\n"),
      "flow count larger than flow lines");
}

TEST(TextFormatCorpusTest, WrongCountsAreRejected) {
  // Count smaller than the number of flow lines: the surplus line is a
  // trailing record, not silently dropped.
  ExpectRejected(
      ParseInstance("tdmd-instance v1\nlambda 0.5\ndigraph 3\n"
                    "arc 0 1\narc 1 2\nflows 1\nflow 4 0 1 2\n"
                    "flow 2 0 1\n"),
      "flow count smaller than flow lines");
  ExpectRejected(ParseInstance(std::string(kGoodInstance) + "box 0\n"),
                 "trailing foreign record");
}

TEST(TextFormatCorpusTest, NonFiniteOrOutOfRangeLambdaIsRejected) {
  const auto with_lambda = [](const std::string& lambda) {
    return "tdmd-instance v1\nlambda " + lambda +
           "\ndigraph 3\narc 0 1\narc 1 2\nflows 1\nflow 4 0 1 2\n";
  };
  // std::stod happily parses "nan" and "inf"; the reader must not.
  ExpectRejected(ParseInstance(with_lambda("nan")), "NaN lambda");
  ExpectRejected(ParseInstance(with_lambda("inf")), "inf lambda");
  ExpectRejected(ParseInstance(with_lambda("-inf")), "-inf lambda");
  ExpectRejected(ParseInstance(with_lambda("-0.1")), "negative lambda");
  ExpectRejected(ParseInstance(with_lambda("1.0001")), "lambda above 1");
  ExpectRejected(ParseInstance(with_lambda("half")), "non-numeric lambda");
}

TEST(TextFormatCorpusTest, OverflowingVertexIdsAreRejected) {
  // 2^33 fits int64 (so stoll succeeds) but not VertexId (int32); an
  // unchecked cast would silently truncate to vertex 0.
  ExpectRejected(
      ParseInstance("tdmd-instance v1\nlambda 0.5\ndigraph 8589934592\n"),
      "digraph vertex count overflows VertexId");
  ExpectRejected(
      ParseInstance("tdmd-instance v1\nlambda 0.5\ndigraph 3\n"
                    "arc 0 1\narc 1 2\nflows 1\n"
                    "flow 4 0 1 8589934592\n"),
      "flow path vertex overflows VertexId");
  ExpectRejected(ParseTree("tree 8589934592\n"),
                 "tree vertex count overflows VertexId");
}

TEST(TextFormatCorpusTest, MalformedFlowsAreRejected) {
  const auto with_flow = [](const std::string& flow_line) {
    return "tdmd-instance v1\nlambda 0.5\ndigraph 3\narc 0 1\narc 1 2\n"
           "flows 1\n" +
           flow_line;
  };
  ExpectRejected(ParseInstance(with_flow("flow 0 0 1 2\n")), "zero rate");
  ExpectRejected(ParseInstance(with_flow("flow -3 0 1 2\n")),
                 "negative rate");
  ExpectRejected(ParseInstance(with_flow("flow 2.5 0 1 2\n")),
                 "fractional rate");
  ExpectRejected(ParseInstance(with_flow("flow 4\n")), "flow with no path");
  ExpectRejected(ParseInstance(with_flow("flow 4 0 2\n")),
                 "path not present in the digraph");
  ExpectRejected(ParseInstance(with_flow("flow 4 0 -1 2\n")),
                 "negative path vertex");
}

TEST(TextFormatCorpusTest, MalformedTreesAreRejected) {
  ExpectRejected(ParseTree(""), "empty tree file");
  ExpectRejected(ParseTree("tree 0\n"), "zero-vertex tree");
  ExpectRejected(ParseTree("tree 3\nparent 1 0\nparent 1 2\n"),
                 "duplicate parent line");
  ExpectRejected(ParseTree("tree 3\nparent 1 0\n"),
                 "two roots (0 and 2)");
  ExpectRejected(ParseTree("tree 3\nparent 0 1\nparent 1 0\nparent 2 0\n"),
                 "parent cycle");
  ExpectRejected(ParseTree("tree 3\nparent 5 0\nparent 1 0\n"),
                 "parent vertex out of range");
}

TEST(TextFormatCorpusTest, MalformedDeploymentsAreRejected) {
  const auto parse = [](const std::string& text) {
    std::istringstream iss(text);
    return ReadDeployment(iss, 4);
  };
  ExpectRejected(parse("deployment\nbox 1\nbox 1\n"), "duplicate box");
  ExpectRejected(parse("deployment\nbox 9\n"), "box out of range");
  ExpectRejected(parse("deployment\nbox -1\n"), "negative box");
  ExpectRejected(parse("boxes\n"), "wrong header");
}

TEST(TextFormatCorpusTest, ErrorsCarryLineNumbers) {
  const Parsed<core::Instance> parsed =
      ParseInstance("tdmd-instance v1\nlambda 0.5\ndigraph 3\n"
                    "arc 0 1\narc 9 2\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error.find("line 5"), std::string::npos)
      << parsed.error;
}

}  // namespace
}  // namespace tdmd::io
