// Quality-observability unit tests: derived-field arithmetic, the
// certificate tracker's min(cert, trivial) bound selection, the timeline
// ring + EWMA/CUSUM/burn-rate detectors (fire and clear edges), snapshot
// round-trips with incoherent-state rejection, and the packed trace-arg
// encodings quality-report decodes.
#include "obs/quality.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "obs/timeseries.hpp"

namespace tdmd::obs {
namespace {

QualitySample RatioSample(std::uint64_t epoch, double ratio,
                          std::uint64_t since_adoption = 0) {
  QualitySample s;
  s.epoch = epoch;
  s.unprocessed = 100.0;
  s.bandwidth = 100.0 - ratio * 50.0;  // decrement = ratio * 50
  s.opt_bound = 50.0;
  s.epochs_since_adoption = since_adoption;
  DeriveQualityFields(&s);
  return s;
}

TEST(ObsQualityTest, DeriveQualityFields) {
  QualitySample s;
  s.unprocessed = 10.0;
  s.bandwidth = 4.0;
  s.opt_bound = 8.0;
  s.deployed = 3;
  s.budget = 4;
  DeriveQualityFields(&s);
  EXPECT_DOUBLE_EQ(s.decrement, 6.0);
  EXPECT_DOUBLE_EQ(s.realized_ratio, 0.75);
  EXPECT_DOUBLE_EQ(s.feasibility_margin, 0.25);

  // Zero bound (no decrement is possible at all) reads as a perfect ratio.
  s.opt_bound = 0.0;
  DeriveQualityFields(&s);
  EXPECT_DOUBLE_EQ(s.realized_ratio, 1.0);

  // Deployment at or past the budget has no spare margin; zero budget is
  // defined as zero margin rather than a division by zero.
  s.deployed = 7;
  DeriveQualityFields(&s);
  EXPECT_DOUBLE_EQ(s.feasibility_margin, 0.0);
  s.budget = 0;
  DeriveQualityFields(&s);
  EXPECT_DOUBLE_EQ(s.feasibility_margin, 0.0);
}

TEST(ObsQualityTest, TrackerUsesTrivialBoundWithoutCertificate) {
  QualityTracker tracker;
  QualitySampleInputs in;
  in.bandwidth = 60.0;
  in.unprocessed = 100.0;
  in.lambda = 0.5;
  const QualitySample s = tracker.MakeSample(in);
  EXPECT_FALSE(s.certified);
  EXPECT_DOUBLE_EQ(s.opt_bound, 50.0);  // (1 - lambda) * unprocessed
  EXPECT_DOUBLE_EQ(s.decrement, 40.0);
  EXPECT_DOUBLE_EQ(s.realized_ratio, 0.8);
}

TEST(ObsQualityTest, TrackerPrefersTighterCertificate) {
  QualityTracker tracker;
  QualitySampleInputs in;
  in.bandwidth = 60.0;
  in.unprocessed = 100.0;
  in.lambda = 0.5;

  tracker.OnCertificate(45.0);
  QualitySample s = tracker.MakeSample(in);
  EXPECT_TRUE(s.certified);
  EXPECT_DOUBLE_EQ(s.opt_bound, 45.0);

  // Arrivals inflate the certificate by the flow's serve-at-source
  // potential; once it exceeds the trivial bound the trivial one wins.
  tracker.OnArrival(3.0);
  s = tracker.MakeSample(in);
  EXPECT_TRUE(s.certified);
  EXPECT_DOUBLE_EQ(s.opt_bound, 48.0);
  tracker.OnArrival(10.0);
  s = tracker.MakeSample(in);
  EXPECT_FALSE(s.certified);
  EXPECT_DOUBLE_EQ(s.opt_bound, 50.0);
}

TEST(ObsQualityTest, TrackerAdoptionClockAndStateRoundTrip) {
  QualityTracker tracker;
  tracker.OnEpoch();
  tracker.OnEpoch();
  QualitySampleInputs in;
  in.unprocessed = 10.0;
  EXPECT_EQ(tracker.MakeSample(in).epochs_since_adoption, 2u);
  tracker.OnAdoption();
  EXPECT_EQ(tracker.MakeSample(in).epochs_since_adoption, 0u);

  tracker.OnCertificate(7.0);
  tracker.OnEpoch();
  const QualityTrackerState state = tracker.state();
  QualityTracker restored;
  restored.RestoreState(state);
  EXPECT_EQ(restored.state().cert_valid, state.cert_valid);
  EXPECT_DOUBLE_EQ(restored.state().cert_bound, state.cert_bound);
  EXPECT_EQ(restored.state().epochs_since_adoption,
            state.epochs_since_adoption);
}

TEST(ObsQualityTest, TrackerCopiesAttribution) {
  QualityTracker tracker;
  std::vector<VertexAttribution> attr{{3, 1.5}, {7, 0.5}};
  QualitySampleInputs in;
  in.unprocessed = 10.0;
  in.attribution = &attr;
  const QualitySample s = tracker.MakeSample(in);
  ASSERT_EQ(s.attribution.size(), 2u);
  EXPECT_EQ(s.attribution[0].vertex, 3);
  EXPECT_DOUBLE_EQ(s.attribution[0].marginal_decrement, 1.5);
  EXPECT_EQ(s.attribution[1].vertex, 7);
}

TEST(ObsQualityTest, EwmaPrimesOnFirstSampleThenSmooths) {
  QualityTimeline timeline(8);
  timeline.Push(RatioSample(1, 1.0));
  EXPECT_DOUBLE_EQ(timeline.ewma(), 1.0);
  timeline.Push(RatioSample(2, 0.5));
  EXPECT_DOUBLE_EQ(timeline.ewma(), 0.2 * 0.5 + 0.8 * 1.0);
}

TEST(ObsQualityTest, CusumFiresOnSustainedGapAndClearsOnRecovery) {
  QualityTimeline timeline(16);
  // Flat-zero ratio accumulates floor - slack ~ 0.532 per epoch, so the
  // 1.0 threshold trips on the second sample.
  EXPECT_TRUE(timeline.Push(RatioSample(1, 0.0)).empty());
  const std::vector<QualityAlert> fired = timeline.Push(RatioSample(2, 0.0));
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].kind, QualityAlertKind::kQualityGapCusum);
  EXPECT_TRUE(fired[0].raised);
  EXPECT_EQ(fired[0].epoch, 2u);
  EXPECT_TRUE(timeline.AlertActive(QualityAlertKind::kQualityGapCusum));

  // A healthy ratio drains S back to zero and clears the alert.
  std::vector<QualityAlert> cleared;
  for (std::uint64_t e = 3; cleared.empty() && e < 10; ++e) {
    cleared = timeline.Push(RatioSample(e, 1.0));
  }
  ASSERT_EQ(cleared.size(), 1u);
  EXPECT_EQ(cleared[0].kind, QualityAlertKind::kQualityGapCusum);
  EXPECT_FALSE(cleared[0].raised);
  EXPECT_FALSE(timeline.AlertActive(QualityAlertKind::kQualityGapCusum));
  EXPECT_EQ(timeline.alerts_raised_total(), 1u);
  EXPECT_EQ(timeline.alerts_cleared_total(), 1u);
}

TEST(ObsQualityTest, TransientDipDoesNotFireCusum) {
  QualityTimeline timeline(16);
  EXPECT_TRUE(timeline.Push(RatioSample(1, 0.0)).empty());
  EXPECT_TRUE(timeline.Push(RatioSample(2, 1.0)).empty());  // S drains
  EXPECT_TRUE(timeline.Push(RatioSample(3, 0.0)).empty());
  EXPECT_FALSE(timeline.AlertActive(QualityAlertKind::kQualityGapCusum));
}

TEST(ObsQualityTest, BurnRateSilentUntilFullWindowThenFires) {
  QualityDetectorOptions detectors;
  detectors.burn_window = 4;
  detectors.burn_error_budget = 0.25;  // one violation per window allowed
  // Neutralise the CUSUM so only burn-rate edges appear.
  detectors.cusum_threshold = 1e9;
  QualityTimeline timeline(16, detectors);

  // Three below-floor samples: window not full yet, no burn alert.
  for (std::uint64_t e = 1; e <= 3; ++e) {
    EXPECT_TRUE(timeline.Push(RatioSample(e, 0.0)).empty());
  }
  // Fourth sample completes the window: 4 violations / (4 * 0.25) = 4 > 1.
  const std::vector<QualityAlert> fired = timeline.Push(RatioSample(4, 0.0));
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].kind, QualityAlertKind::kQualityGapBurnRate);
  EXPECT_TRUE(fired[0].raised);

  // Healthy samples push the violations out of the window and clear it.
  std::vector<QualityAlert> cleared;
  for (std::uint64_t e = 5; cleared.empty() && e < 20; ++e) {
    cleared = timeline.Push(RatioSample(e, 1.0));
  }
  ASSERT_EQ(cleared.size(), 1u);
  EXPECT_FALSE(cleared[0].raised);
  EXPECT_FALSE(timeline.AlertActive(QualityAlertKind::kQualityGapBurnRate));
}

TEST(ObsQualityTest, AdoptionStalenessBurnRate) {
  QualityDetectorOptions detectors;
  detectors.burn_window = 4;
  detectors.burn_error_budget = 0.25;
  detectors.adoption_slo_epochs = 8;
  QualityTimeline timeline(16, detectors);

  std::vector<QualityAlert> fired;
  for (std::uint64_t e = 1; e <= 4; ++e) {
    // Healthy ratio, but the deployment is long past the adoption SLO.
    fired = timeline.Push(RatioSample(e, 1.0, /*since_adoption=*/20));
  }
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].kind, QualityAlertKind::kAdoptionStalenessBurnRate);
  EXPECT_TRUE(fired[0].raised);
}

TEST(ObsQualityTest, RingWrapKeepsNewestSamples) {
  QualityTimeline timeline(4);
  for (std::uint64_t e = 1; e <= 6; ++e) {
    timeline.Push(RatioSample(e, 1.0));
  }
  EXPECT_EQ(timeline.size(), 4u);
  EXPECT_EQ(timeline.samples_total(), 6u);
  const QualityTimelineSnapshot snapshot = timeline.Snapshot();
  ASSERT_EQ(snapshot.samples.size(), 4u);
  EXPECT_EQ(snapshot.samples.front().epoch, 3u);  // oldest first
  EXPECT_EQ(snapshot.samples.back().epoch, 6u);
  EXPECT_EQ(timeline.Latest().epoch, 6u);
}

TEST(ObsQualityTest, AlertLogCapped) {
  QualityTimeline timeline(8);
  for (int cycle = 0; cycle < 300; ++cycle) {
    const std::uint64_t base = static_cast<std::uint64_t>(cycle) * 3;
    timeline.Push(RatioSample(base + 1, 0.0));
    timeline.Push(RatioSample(base + 2, 0.0));  // CUSUM fires
    timeline.Push(RatioSample(base + 3, 2.0));  // CUSUM clears
  }
  const QualityTimelineSnapshot snapshot = timeline.Snapshot();
  EXPECT_EQ(snapshot.alerts.size(), QualityTimeline::kMaxAlertLog);
  EXPECT_GE(snapshot.alerts_raised_total, 300u);
}

TEST(ObsQualityTest, SnapshotRestoreRoundTrip) {
  QualityTimeline timeline(8);
  for (std::uint64_t e = 1; e <= 5; ++e) {
    timeline.Push(RatioSample(e, e % 2 == 0 ? 0.0 : 1.0));
  }
  const QualityTimelineSnapshot snapshot = timeline.Snapshot();

  QualityTimeline restored(8);
  ASSERT_TRUE(restored.Restore(snapshot));
  const QualityTimelineSnapshot again = restored.Snapshot();
  ASSERT_EQ(again.samples.size(), snapshot.samples.size());
  for (std::size_t i = 0; i < snapshot.samples.size(); ++i) {
    EXPECT_EQ(again.samples[i].epoch, snapshot.samples[i].epoch);
    EXPECT_DOUBLE_EQ(again.samples[i].realized_ratio,
                     snapshot.samples[i].realized_ratio);
  }
  EXPECT_EQ(again.alerts.size(), snapshot.alerts.size());
  EXPECT_DOUBLE_EQ(again.ewma, snapshot.ewma);
  EXPECT_EQ(again.ewma_primed, snapshot.ewma_primed);
  EXPECT_DOUBLE_EQ(again.cusum, snapshot.cusum);
  EXPECT_EQ(again.active_alerts, snapshot.active_alerts);
  EXPECT_EQ(again.samples_total, snapshot.samples_total);
  EXPECT_EQ(again.alerts_raised_total, snapshot.alerts_raised_total);
  EXPECT_EQ(again.alerts_cleared_total, snapshot.alerts_cleared_total);
}

TEST(ObsQualityTest, RestoreRejectsIncoherentSnapshots) {
  QualityTimeline timeline(4);

  QualityTimelineSnapshot too_many;
  too_many.samples.resize(5);
  too_many.samples_total = 5;
  EXPECT_FALSE(timeline.Restore(too_many));

  QualityTimelineSnapshot bad_bits;
  bad_bits.active_alerts = 1u << kNumQualityAlertKinds;
  EXPECT_FALSE(timeline.Restore(bad_bits));

  QualityTimelineSnapshot bad_ewma;
  bad_ewma.ewma = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(timeline.Restore(bad_ewma));

  QualityTimelineSnapshot bad_cusum;
  bad_cusum.cusum = -1.0;
  EXPECT_FALSE(timeline.Restore(bad_cusum));

  QualityTimelineSnapshot bad_total;
  bad_total.samples.resize(2);
  bad_total.samples_total = 1;  // lifetime total below live count
  EXPECT_FALSE(timeline.Restore(bad_total));

  QualityTimelineSnapshot long_log;
  long_log.alerts.resize(QualityTimeline::kMaxAlertLog + 1);
  EXPECT_FALSE(timeline.Restore(long_log));

  // Rejection leaves the timeline untouched.
  EXPECT_EQ(timeline.size(), 0u);
  EXPECT_EQ(timeline.samples_total(), 0u);
}

TEST(ObsQualityTest, PackedSampleArgRoundTrips) {
  std::uint64_t epoch = 0;
  double ratio = 0.0;
  UnpackQualitySampleArg(PackQualitySampleArg(123456, 0.654321), &epoch,
                         &ratio);
  EXPECT_EQ(epoch, 123456u);
  EXPECT_NEAR(ratio, 0.654321, 1e-6);

  // Ratio clamps into [0, 4] at ppm resolution.
  UnpackQualitySampleArg(PackQualitySampleArg(1, 99.0), &epoch, &ratio);
  EXPECT_DOUBLE_EQ(ratio, 4.0);
  UnpackQualitySampleArg(PackQualitySampleArg(1, -1.0), &epoch, &ratio);
  EXPECT_DOUBLE_EQ(ratio, 0.0);
}

TEST(ObsQualityTest, PackedAlertArgRoundTrips) {
  QualityAlert alert;
  alert.kind = QualityAlertKind::kAdoptionStalenessBurnRate;
  alert.raised = true;
  alert.epoch = 77;
  QualityAlert decoded;
  ASSERT_TRUE(UnpackQualityAlertArg(PackQualityAlertArg(alert), &decoded));
  EXPECT_EQ(decoded.kind, alert.kind);
  EXPECT_TRUE(decoded.raised);
  EXPECT_EQ(decoded.epoch, 77u);

  // Unknown kind bits are rejected rather than mapped to a valid kind.
  const std::uint64_t bogus = (77ull << 32) | (3u << 1) | 1u;
  EXPECT_FALSE(UnpackQualityAlertArg(bogus, &decoded));
}

}  // namespace
}  // namespace tdmd::obs
