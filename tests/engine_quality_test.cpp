// Engine-level quality observability (DESIGN.md Section 11): the sampled
// decrement matches a from-scratch recomputation, the certified bound
// never sits below the realized decrement or the true brute-force optimum
// (property-tested over random tree and general instances under churn),
// the PATCH_ONLY CUSUM regression fires deterministically and clears on
// recovery, and the quality gauges surface through Engine::Metrics.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/brute_force.hpp"
#include "core/instance.hpp"
#include "engine/churn_trace.hpp"
#include "engine/engine.hpp"
#include "faults/faults.hpp"
#include "obs/metrics.hpp"
#include "obs/quality.hpp"
#include "obs/timeseries.hpp"
#include "topology/generators.hpp"
#include "traffic/generator.hpp"

namespace tdmd::engine {
namespace {

constexpr double kTol = 1e-7;

graph::Digraph GeneralNetwork(std::uint64_t seed, VertexId n) {
  Rng rng(seed);
  return topology::Waxman(n, 0.5, 0.4, rng);
}

traffic::FlowSet Prefill(const graph::Digraph& network, std::uint64_t seed,
                         std::size_t max_flows) {
  traffic::WorkloadParams params;
  params.flow_density = 0.05;
  params.max_flows = max_flows;
  Rng rng(seed);
  return traffic::GenerateGeneralWorkload(network, {}, params, rng);
}

ChurnTrace MakeTrace(const graph::Digraph& network, std::size_t epochs,
                     std::uint64_t seed) {
  core::ChurnModel churn;
  churn.arrival_count = 3;
  churn.departure_probability = 0.2;
  Rng rng(seed);
  return BuildChurnTrace(network, churn, epochs, 0, rng);
}

/// Descending line digraph n-1 -> ... -> 0; the feasibility patch (ties
/// toward the lowest vertex id) covers whole-line flows at vertex 0 where
/// they diminish zero edges, so a PATCH_ONLY engine realizes a decrement
/// of zero against a large certified bound — a clean quality regression.
graph::Digraph DescendingLineNetwork(VertexId n) {
  graph::DigraphBuilder builder(n);
  for (VertexId v = n - 1; v > 0; --v) builder.AddArc(v, v - 1);
  return builder.Build();
}

traffic::Flow DescendingLineFlow(Rate rate, VertexId from) {
  traffic::Flow f;
  f.rate = rate;
  for (VertexId v = from; v >= 0; --v) f.path.vertices.push_back(v);
  f.src = from;
  f.dst = 0;
  return f;
}

/// Replays the trace while mirroring the engine's active flow set, and
/// after every epoch cross-validates the freshest quality sample against
/// a from-scratch core::Instance of the same flows: the sampled decrement
/// must match unprocessed - bandwidth, the certified bound must cover the
/// realized decrement, and on these small instances the bound must also
/// cover the exact brute-force optimum (the claim it certifies).
void ReplayAndValidate(const graph::Digraph& network,
                       const traffic::FlowSet& prefill,
                       const ChurnTrace& trace, std::size_t k,
                       double lambda) {
  EngineOptions options;
  options.k = k;
  options.lambda = lambda;
  options.synchronous = true;
  Engine engine(network, options);

  std::vector<FlowTicket> tickets;
  std::vector<traffic::Flow> mirror;
  const auto submit = [&](const std::vector<traffic::Flow>& arrivals,
                          const std::vector<std::size_t>& departures) {
    std::vector<FlowTicket> departing;
    for (std::size_t position : departures) {
      ASSERT_LT(position, tickets.size());
      departing.push_back(tickets[position]);
    }
    for (auto it = departures.rbegin(); it != departures.rend(); ++it) {
      const auto offset = static_cast<std::ptrdiff_t>(*it);
      tickets.erase(tickets.begin() + offset);
      mirror.erase(mirror.begin() + offset);
    }
    const Engine::BatchResult result =
        engine.SubmitBatch(arrivals, departing);
    tickets.insert(tickets.end(), result.tickets.begin(),
                   result.tickets.end());
    mirror.insert(mirror.end(), arrivals.begin(), arrivals.end());
  };

  submit(prefill, {});
  std::size_t certified_samples = 0;
  for (const ChurnEpoch& epoch : trace.epochs) {
    submit(epoch.arrivals, epoch.departures);
    const obs::QualityTimelineSnapshot timeline = engine.QualityTimeline();
    ASSERT_FALSE(timeline.samples.empty());
    const obs::QualitySample& sample = timeline.samples.back();
    certified_samples += sample.certified ? 1 : 0;

    const auto snapshot = engine.CurrentSnapshot();
    EXPECT_DOUBLE_EQ(sample.bandwidth, snapshot->bandwidth);
    EXPECT_DOUBLE_EQ(sample.decrement,
                     sample.unprocessed - sample.bandwidth);
    EXPECT_LE(sample.decrement, sample.opt_bound + kTol);

    if (mirror.empty()) continue;
    const core::Instance instance(network, mirror, lambda);
    EXPECT_DOUBLE_EQ(sample.unprocessed, instance.UnprocessedBandwidth());
    const Bandwidth optimum = core::BruteForceMaxDecrement(instance, k);
    EXPECT_LE(optimum, sample.opt_bound + kTol)
        << "certificate below the true optimum at epoch " << sample.epoch;
    EXPECT_LE(sample.decrement, optimum + kTol);
  }
  // The sync engine re-solves every epoch, so the certificate (not just
  // the trivial serve-at-source bound) must actually be exercised.
  EXPECT_GT(certified_samples, 0u);
}

TEST(EngineQualityTest, CertificateCoversOptimumOnGeneralInstances) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const graph::Digraph network = GeneralNetwork(seed, 9);
    ReplayAndValidate(network, Prefill(network, seed + 100, 8),
                      MakeTrace(network, 8, seed + 200), /*k=*/2,
                      /*lambda=*/0.5);
  }
}

TEST(EngineQualityTest, CertificateCoversOptimumOnTreeInstances) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Rng rng(seed);
    const graph::Tree tree = topology::RandomTree(10, rng);
    const graph::Digraph network = tree.ToDigraph();
    traffic::WorkloadParams params;
    params.flow_density = 0.05;
    params.max_flows = 8;
    Rng wl_rng(seed + 300);
    const traffic::FlowSet prefill =
        traffic::GenerateTreeWorkload(tree, params, wl_rng);
    ReplayAndValidate(network, prefill, MakeTrace(network, 8, seed + 400),
                      /*k=*/2, /*lambda=*/0.4);
  }
}

// Deterministic regression drill (ISSUE acceptance): every re-solve
// throws, the engine degrades into PATCH_ONLY serving whole-line flows at
// the path tail (zero realized decrement), and the quality-gap CUSUM must
// fire within a bounded number of epochs.  Disarming the injector lets
// the next probe re-solve adopt a real placement, and the alert clears.
TEST(EngineQualityTest, CusumFiresInPatchOnlyAndClearsOnRecovery) {
  const VertexId n = 10;
  const graph::Digraph network = DescendingLineNetwork(n);

  faults::FaultSpec spec;
  spec.seed = 7;
  spec.at(faults::FaultSite::kGreedyRound).throw_probability = 1.0;
  faults::FaultInjector injector(spec);

  EngineOptions options;
  options.k = 3;
  options.lambda = 0.5;
  options.synchronous = true;
  options.fault_injector = &injector;
  options.max_resolve_retries = 0;
  options.degrade_after_failures = 1;
  options.patch_only_after_failures = 2;
  options.probe_interval_epochs = 2;
  Engine engine(network, options);

  std::uint64_t raised_epoch = 0;
  for (std::uint64_t e = 1; e <= 10 && raised_epoch == 0; ++e) {
    engine.SubmitBatch({DescendingLineFlow(4, n - 1)}, {});
    const obs::QualityTimelineSnapshot timeline = engine.QualityTimeline();
    if ((timeline.active_alerts &
         (1u << static_cast<std::uint32_t>(
              obs::QualityAlertKind::kQualityGapCusum))) != 0) {
      raised_epoch = e;
    }
  }
  ASSERT_GT(raised_epoch, 0u) << "CUSUM never fired under PATCH_ONLY";
  EXPECT_LE(raised_epoch, 5u);  // ~2 epochs below floor - slack suffice
  EXPECT_EQ(engine.mode(), EngineMode::kPatchOnly);
  const obs::QualitySample degraded =
      engine.QualityTimeline().samples.back();
  EXPECT_LT(degraded.realized_ratio, obs::kQualityRatioFloor);

  injector.Disarm();
  std::uint64_t cleared_epoch = 0;
  for (std::uint64_t e = 1; e <= 20 && cleared_epoch == 0; ++e) {
    engine.SubmitBatch({DescendingLineFlow(4, n - 1)}, {});
    const obs::QualityTimelineSnapshot timeline = engine.QualityTimeline();
    if ((timeline.active_alerts &
         (1u << static_cast<std::uint32_t>(
              obs::QualityAlertKind::kQualityGapCusum))) == 0) {
      cleared_epoch = e;
    }
  }
  ASSERT_GT(cleared_epoch, 0u) << "CUSUM never cleared after recovery";
  EXPECT_EQ(engine.mode(), EngineMode::kNormal);
  const obs::QualityTimelineSnapshot timeline = engine.QualityTimeline();
  EXPECT_GE(timeline.alerts_raised_total, 1u);
  EXPECT_GE(timeline.alerts_cleared_total, 1u);
  EXPECT_GT(timeline.samples.back().realized_ratio,
            obs::kQualityRatioFloor);
}

TEST(EngineQualityTest, AttributionCoversDeployedVertices) {
  const graph::Digraph network = GeneralNetwork(11, 12);
  EngineOptions options;
  options.k = 3;
  options.synchronous = true;
  Engine engine(network, options);
  const traffic::FlowSet prefill = Prefill(network, 21, 24);
  engine.SubmitBatch(prefill, {});
  engine.SubmitBatch({}, {});

  const obs::QualityTimelineSnapshot timeline = engine.QualityTimeline();
  ASSERT_FALSE(timeline.samples.empty());
  const obs::QualitySample& sample = timeline.samples.back();
  const auto snapshot = engine.CurrentSnapshot();
  EXPECT_EQ(sample.attribution.size(), snapshot->deployment.size());
  for (const obs::VertexAttribution& attr : sample.attribution) {
    EXPECT_TRUE(snapshot->deployment.Contains(attr.vertex));
    EXPECT_GE(attr.marginal_decrement, 0.0);
  }
}

TEST(EngineQualityTest, QualityGaugesExposedThroughMetrics) {
  const graph::Digraph network = GeneralNetwork(5, 10);
  EngineOptions options;
  options.k = 2;
  options.synchronous = true;
  Engine engine(network, options);
  const traffic::FlowSet prefill = Prefill(network, 31, 12);
  engine.SubmitBatch(prefill, {});

  std::ostringstream os;
  engine.DumpMetrics(os, obs::MetricsFormat::kPrometheus);
  const std::string dump = os.str();
  EXPECT_NE(dump.find("tdmd_quality_samples_total"), std::string::npos);
  EXPECT_NE(dump.find("tdmd_quality_realized_ratio"), std::string::npos);
  EXPECT_NE(dump.find("tdmd_quality_opt_bound"), std::string::npos);
  EXPECT_NE(dump.find("tdmd_quality_alerts_active"), std::string::npos);
}

TEST(EngineQualityTest, SamplingDisabledKeepsTimelineEmpty) {
  const graph::Digraph network = GeneralNetwork(5, 10);
  EngineOptions options;
  options.k = 2;
  options.synchronous = true;
  options.quality_sampling = false;
  Engine engine(network, options);
  const traffic::FlowSet prefill = Prefill(network, 31, 12);
  engine.SubmitBatch(prefill, {});
  const obs::QualityTimelineSnapshot timeline = engine.QualityTimeline();
  EXPECT_TRUE(timeline.samples.empty());
  EXPECT_EQ(timeline.samples_total, 0u);
}

}  // namespace
}  // namespace tdmd::engine
