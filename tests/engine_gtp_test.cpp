#include "engine/incremental_gtp.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <utility>
#include <vector>

#include "core/gtp.hpp"
#include "core/objective.hpp"
#include "engine/coverage_index.hpp"
#include "test_util.hpp"
#include "topology/generators.hpp"

namespace tdmd::engine {
namespace {

// Dyadic lambdas make every per-flow term r_f * (1 - lambda) * delta_l
// exactly representable, so gain sums are order-independent and the
// equivalence check below is exact rather than tolerance-based (the
// index's swap-erase maintenance visits flows in a different order than
// the Instance's flow-id-ordered lists).
constexpr double kLambdas[] = {0.0, 0.125, 0.25, 0.5, 0.75, 1.0};

traffic::Flow MakeFlow(const graph::Digraph& network, VertexId src,
                       VertexId dst, Rate rate) {
  traffic::Flow flow;
  flow.src = src;
  flow.dst = dst;
  flow.rate = rate;
  auto path = graph::ShortestHopPath(network, src, dst);
  EXPECT_TRUE(path.has_value());
  flow.path = std::move(*path);
  return flow;
}

traffic::FlowSet RandomGeneralFlows(const graph::Digraph& network,
                                    std::size_t count, Rng& rng) {
  traffic::FlowSet flows;
  while (flows.size() < count) {
    const auto src = static_cast<VertexId>(
        rng.NextBounded(static_cast<std::uint64_t>(network.num_vertices())));
    if (src == 0) continue;
    flows.push_back(MakeFlow(network, src, 0, rng.NextInt(1, 12)));
  }
  return flows;
}

traffic::FlowSet RandomTreeFlows(const graph::Tree& tree,
                                 std::size_t count, Rng& rng) {
  traffic::FlowSet flows;
  const std::vector<VertexId>& leaves = tree.Leaves();
  for (std::size_t i = 0; i < count; ++i) {
    const VertexId leaf = leaves[static_cast<std::size_t>(
        rng.NextBounded(static_cast<std::uint64_t>(leaves.size())))];
    traffic::Flow flow;
    flow.src = leaf;
    flow.dst = tree.root();
    flow.rate = rng.NextInt(1, 12);
    flow.path.vertices = tree.PathToRoot(leaf);
    flows.push_back(std::move(flow));
  }
  return flows;
}

/// The equivalence contract of the tentpole: CELF over the live index
/// must reproduce batch GTP exactly — same deployment (same order, even),
/// same b(P), same feasibility.
void ExpectEquivalent(const FlowCoverageIndex& index,
                      const core::Instance& instance, std::size_t k,
                      const char* label) {
  IncrementalGtpOptions incremental_options;
  incremental_options.max_middleboxes = k;
  const IncrementalGtpResult incremental =
      SolveIncrementalGtp(index, incremental_options);

  core::GtpOptions batch_options;
  batch_options.max_middleboxes = k;
  const core::PlacementResult batch = Gtp(instance, batch_options);

  EXPECT_FALSE(incremental.cancelled) << label;
  EXPECT_EQ(incremental.deployment.vertices(), batch.deployment.vertices())
      << label << ": greedy selection order diverged";
  EXPECT_DOUBLE_EQ(incremental.bandwidth, batch.bandwidth) << label;
  EXPECT_EQ(incremental.feasible, batch.feasible) << label;

  // The lazy mode of batch GTP shares CelfQueue with the incremental
  // solver; close the triangle.
  batch_options.lazy = true;
  const core::PlacementResult lazy = Gtp(instance, batch_options);
  EXPECT_EQ(incremental.deployment.vertices(), lazy.deployment.vertices())
      << label;
}

TEST(IncrementalGtpPropertyTest, MatchesBatchOnRandomGeneralDigraphs) {
  Rng rng(2024);
  for (int trial = 0; trial < 100; ++trial) {
    const auto n = static_cast<VertexId>(6 + trial % 25);
    graph::Digraph network = topology::Waxman(n, 0.5, 0.4, rng);
    const std::size_t flow_count = 1 + (static_cast<std::size_t>(trial) * 7) % 40;
    const traffic::FlowSet flows = RandomGeneralFlows(network, flow_count, rng);
    const double lambda = kLambdas[trial % 6];
    const std::size_t k = static_cast<std::size_t>(trial) % 9;  // 0 = unlimited

    FlowCoverageIndex index(network, lambda);
    for (const traffic::Flow& flow : flows) index.AddFlow(flow);
    const core::Instance instance(std::move(network), flows, lambda);
    ExpectEquivalent(index, instance, k,
                     ("general trial " + std::to_string(trial)).c_str());
  }
}

TEST(IncrementalGtpPropertyTest, MatchesBatchOnRandomTrees) {
  Rng rng(4048);
  for (int trial = 0; trial < 100; ++trial) {
    const auto n = static_cast<VertexId>(4 + trial % 21);
    const graph::Tree tree = topology::RandomTree(n, rng);
    const std::size_t flow_count = 1 + (static_cast<std::size_t>(trial) * 5) % 30;
    const traffic::FlowSet flows = RandomTreeFlows(tree, flow_count, rng);
    const double lambda = kLambdas[(trial + 3) % 6];
    const std::size_t k = static_cast<std::size_t>(trial + 1) % 7;

    FlowCoverageIndex index(tree.ToDigraph(), lambda);
    for (const traffic::Flow& flow : flows) index.AddFlow(flow);
    const core::Instance instance(tree.ToDigraph(), flows, lambda);
    ExpectEquivalent(index, instance, k,
                     ("tree trial " + std::to_string(trial)).c_str());
  }
}

// The equivalence must survive churn: an index that absorbed arrivals and
// departures (so its visit lists are swap-erase-permuted and its slots
// recycled) still solves identically to a batch run over the survivors.
TEST(IncrementalGtpPropertyTest, MatchesBatchAfterChurn) {
  Rng rng(777);
  for (int trial = 0; trial < 30; ++trial) {
    const auto n = static_cast<VertexId>(10 + trial % 15);
    graph::Digraph network = topology::Waxman(n, 0.5, 0.4, rng);
    const double lambda = kLambdas[trial % 6];

    FlowCoverageIndex index(network, lambda);
    std::vector<FlowTicket> tickets;
    for (const traffic::Flow& flow :
         RandomGeneralFlows(network, 30, rng)) {
      tickets.push_back(index.AddFlow(flow));
    }
    // Depart ~half, in a scattered pattern, then add a second wave.
    for (std::size_t i = 0; i < tickets.size(); i += 2) {
      ASSERT_TRUE(index.RemoveFlow(tickets[i]));
    }
    for (const traffic::Flow& flow :
         RandomGeneralFlows(network, 10, rng)) {
      index.AddFlow(flow);
    }

    const core::Instance instance = index.BuildInstance();
    ExpectEquivalent(index, instance, 1 + static_cast<std::size_t>(trial) % 6,
                     ("churn trial " + std::to_string(trial)).c_str());
  }
}

// The engine's re-solve mode: feasibility-aware selection while flows are
// unserved, CELF afterwards.  Must match batch GTP's feasibility_aware
// mode (the DynamicPlacer default solver) exactly.
TEST(IncrementalGtpPropertyTest, FeasibilityAwareMatchesBatch) {
  Rng rng(911);
  for (int trial = 0; trial < 60; ++trial) {
    const auto n = static_cast<VertexId>(8 + trial % 20);
    graph::Digraph network = topology::Waxman(n, 0.5, 0.4, rng);
    const traffic::FlowSet flows =
        RandomGeneralFlows(network, 5 + (static_cast<std::size_t>(trial) * 3) % 25, rng);
    const double lambda = kLambdas[trial % 6];
    const std::size_t k = 1 + static_cast<std::size_t>(trial) % 6;

    FlowCoverageIndex index(network, lambda);
    for (const traffic::Flow& flow : flows) index.AddFlow(flow);

    IncrementalGtpOptions incremental_options;
    incremental_options.max_middleboxes = k;
    incremental_options.feasibility_aware = true;
    const IncrementalGtpResult incremental =
        SolveIncrementalGtp(index, incremental_options);

    core::GtpOptions batch_options;
    batch_options.max_middleboxes = k;
    batch_options.feasibility_aware = true;
    const core::Instance instance(std::move(network), flows, lambda);
    const core::PlacementResult batch = Gtp(instance, batch_options);

    EXPECT_EQ(incremental.deployment.vertices(), batch.deployment.vertices())
        << "feasibility-aware trial " << trial;
    EXPECT_DOUBLE_EQ(incremental.bandwidth, batch.bandwidth)
        << "feasibility-aware trial " << trial;
    EXPECT_EQ(incremental.feasible, batch.feasible)
        << "feasibility-aware trial " << trial;
  }
}

TEST(IncrementalGtpTest, EmptyIndexIsTriviallyFeasible) {
  Rng rng(5);
  FlowCoverageIndex index(topology::Waxman(8, 0.5, 0.4, rng), 0.5);
  const IncrementalGtpResult result = SolveIncrementalGtp(index, {});
  EXPECT_TRUE(result.feasible);
  EXPECT_TRUE(result.deployment.empty());
  EXPECT_DOUBLE_EQ(result.bandwidth, 0.0);
}

TEST(IncrementalGtpTest, LazyHeapSavesReevaluations) {
  Rng rng(6);
  graph::Digraph network = topology::Waxman(40, 0.6, 0.5, rng);
  FlowCoverageIndex index(network, 0.5);
  for (const traffic::Flow& flow : RandomGeneralFlows(network, 120, rng)) {
    index.AddFlow(flow);
  }
  IncrementalGtpOptions options;
  options.max_middleboxes = 10;
  const IncrementalGtpResult result = SolveIncrementalGtp(index, options);
  EXPECT_GT(result.reevals_saved, 0u);
  // CELF's total work (prime + revalidations) must undercut the plain
  // full-scan count on an instance this size.
  core::GtpOptions batch_options;
  batch_options.max_middleboxes = 10;
  const core::PlacementResult plain =
      Gtp(index.BuildInstance(), batch_options);
  EXPECT_LT(result.oracle_calls, plain.oracle_calls);
}

TEST(IncrementalGtpTest, CancellationStopsTheSolve) {
  Rng rng(7);
  graph::Digraph network = topology::Waxman(30, 0.6, 0.5, rng);
  FlowCoverageIndex index(network, 0.5);
  for (const traffic::Flow& flow : RandomGeneralFlows(network, 50, rng)) {
    index.AddFlow(flow);
  }
  std::atomic<bool> cancel{true};  // cancelled before the first round
  IncrementalGtpOptions options;
  options.max_middleboxes = 8;
  options.cancel = &cancel;
  const IncrementalGtpResult result = SolveIncrementalGtp(index, options);
  EXPECT_TRUE(result.cancelled);
  EXPECT_TRUE(result.deployment.empty());
}

}  // namespace
}  // namespace tdmd::engine
