// Partitioner determinism and flow-ownership pinning (DESIGN.md
// Section 13.1): same seed + topology must produce the identical shard
// assignment across runs and thread counts, and a cross-shard flow must
// resolve to exactly one owner shard.
#include "shard/partition.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "graph/shortest_path.hpp"
#include "topology/generators.hpp"

namespace tdmd::shard {
namespace {

graph::Digraph TestNetwork(std::uint64_t seed, VertexId n = 40) {
  Rng rng(seed);
  return topology::Waxman(n, 0.5, 0.4, rng);
}

traffic::Flow MakeFlow(const graph::Digraph& g, VertexId src, VertexId dst,
                       Rate rate = 3) {
  traffic::Flow flow;
  flow.src = src;
  flow.dst = dst;
  flow.rate = rate;
  auto path = graph::ShortestHopPath(g, src, dst);
  EXPECT_TRUE(path.has_value());
  flow.path = std::move(*path);
  return flow;
}

TEST(ShardPartitionTest, CoversEveryVertexWithValidShards) {
  const graph::Digraph g = TestNetwork(7);
  for (const std::size_t n : {1u, 2u, 3u, 5u}) {
    PartitionSpec spec;
    spec.num_shards = n;
    const Partition partition = PartitionGraph(g, spec);
    ASSERT_EQ(partition.shard_of.size(),
              static_cast<std::size_t>(g.num_vertices()));
    std::set<std::uint32_t> used;
    for (const std::uint32_t s : partition.shard_of) {
      ASSERT_LT(s, n);
      used.insert(s);
    }
    // Farthest-point growth on a connected graph fills every shard.
    EXPECT_EQ(used.size(), n);
    ASSERT_EQ(partition.anchors.size(), n);
  }
}

TEST(ShardPartitionTest, BfsDeterministicAcrossRuns) {
  const graph::Digraph g = TestNetwork(11);
  PartitionSpec spec;
  spec.num_shards = 4;
  spec.seed = 3;
  const Partition a = PartitionGraph(g, spec);
  const Partition b = PartitionGraph(g, spec);
  EXPECT_EQ(a.shard_of, b.shard_of);
  EXPECT_EQ(a.anchors, b.anchors);
  // A different seed picks a different first growth seed.
  spec.seed = 17;
  const Partition c = PartitionGraph(g, spec);
  EXPECT_NE(a.anchors, c.anchors);
}

TEST(ShardPartitionTest, DeterministicAcrossThreadCounts) {
  const graph::Digraph g = TestNetwork(13);
  PartitionSpec spec;
  spec.num_shards = 4;
  spec.seed = 5;
  const Partition baseline = PartitionGraph(g, spec);

  // The assignment is a pure function of (graph, spec): computing it
  // concurrently on any number of threads yields the identical result.
  for (const std::size_t threads : {2u, 4u, 8u}) {
    std::vector<Partition> results(threads);
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
      pool.emplace_back([&g, &spec, &results, t]() {
        results[t] = PartitionGraph(g, spec);
      });
    }
    for (std::thread& thread : pool) thread.join();
    for (const Partition& result : results) {
      EXPECT_EQ(result.shard_of, baseline.shard_of);
      EXPECT_EQ(result.anchors, baseline.anchors);
    }
  }
}

TEST(ShardPartitionTest, SpatialCutsDeterministicWithAndWithoutCoords) {
  const graph::Digraph g = TestNetwork(19);
  PartitionSpec spec;
  spec.num_shards = 4;
  spec.method = PartitionMethod::kSpatial;
  // Landmark-coordinate fallback (no coordinates supplied).
  const Partition fallback_a = PartitionGraph(g, spec);
  const Partition fallback_b = PartitionGraph(g, spec);
  EXPECT_EQ(fallback_a.shard_of, fallback_b.shard_of);

  // Supplied coordinates: a deterministic grid layout.
  const auto num = static_cast<std::size_t>(g.num_vertices());
  for (std::size_t v = 0; v < num; ++v) {
    spec.x.push_back(static_cast<double>(v % 8));
    spec.y.push_back(static_cast<double>(v / 8));
  }
  const Partition grid_a = PartitionGraph(g, spec);
  const Partition grid_b = PartitionGraph(g, spec);
  EXPECT_EQ(grid_a.shard_of, grid_b.shard_of);
  std::set<std::uint32_t> used(grid_a.shard_of.begin(),
                               grid_a.shard_of.end());
  EXPECT_EQ(used.size(), spec.num_shards);
}

TEST(ShardPartitionTest, ExplicitSeedsAnchorTheirShards) {
  const graph::Digraph g = TestNetwork(23);
  PartitionSpec spec;
  spec.num_shards = 3;
  spec.seeds = {0, 7, 21};
  const Partition partition = PartitionGraph(g, spec);
  for (std::size_t s = 0; s < spec.seeds.size(); ++s) {
    EXPECT_EQ(partition.shard(spec.seeds[s]),
              static_cast<std::uint32_t>(s));
    EXPECT_EQ(partition.anchors[s], spec.seeds[s]);
  }
}

TEST(ShardPartitionTest, GroupedSeedsKeepWholeCellsPerShard) {
  const graph::Digraph g = TestNetwork(29);
  // Six seeds, three shards: consecutive pairs of Voronoi cells form one
  // shard, and the pair structure must match growing six cells directly.
  PartitionSpec six;
  six.num_shards = 6;
  six.seeds = {0, 5, 11, 17, 23, 31};
  const Partition cells = PartitionGraph(g, six);

  PartitionSpec grouped;
  grouped.num_shards = 3;
  grouped.seeds = six.seeds;
  const Partition partition = PartitionGraph(g, grouped);
  ASSERT_EQ(partition.anchors.size(), 3u);
  EXPECT_EQ(partition.anchors[0], six.seeds[0]);
  EXPECT_EQ(partition.anchors[1], six.seeds[2]);
  EXPECT_EQ(partition.anchors[2], six.seeds[4]);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(partition.shard(v), cells.shard(v) / 2);
  }
}

TEST(ShardPartitionTest, OwnerShardPinsCrossShardFlowsExactlyOnce) {
  const graph::Digraph g = TestNetwork(31);
  PartitionSpec spec;
  spec.num_shards = 4;
  const Partition partition = PartitionGraph(g, spec);

  std::size_t cross_shard_seen = 0;
  Rng rng(97);
  for (std::uint64_t flow_id = 0; flow_id < 200; ++flow_id) {
    const auto src = static_cast<VertexId>(
        rng.NextBounded(static_cast<std::uint64_t>(g.num_vertices())));
    const auto dst = static_cast<VertexId>(
        rng.NextBounded(static_cast<std::uint64_t>(g.num_vertices())));
    if (src == dst) continue;
    const auto path = graph::ShortestHopPath(g, src, dst);
    if (!path.has_value() || path->NumEdges() == 0) continue;
    traffic::Flow flow;
    flow.src = src;
    flow.dst = dst;
    flow.rate = 1;
    flow.path = *path;

    const std::size_t touched = ShardsTouched(partition, flow);
    ASSERT_GE(touched, 1u);
    if (touched > 1) ++cross_shard_seen;

    const std::size_t owner = OwnerShard(partition, flow, flow_id);
    // The owner is one of the shards the path actually visits...
    bool on_path = false;
    for (const VertexId v : flow.path.vertices) {
      on_path = on_path || partition.shard(v) == owner;
    }
    EXPECT_TRUE(on_path);
    // ...and the pin is a pure function of (partition, path, id).
    EXPECT_EQ(OwnerShard(partition, flow, flow_id), owner);
  }
  // The random workload must actually exercise the cross-shard case.
  EXPECT_GT(cross_shard_seen, 0u);
}

TEST(ShardPartitionTest, OwnerSpreadsCrossShardFlowsByFlowId) {
  const graph::Digraph g = TestNetwork(37);
  PartitionSpec spec;
  spec.num_shards = 4;
  const Partition partition = PartitionGraph(g, spec);
  // Find one flow touching >= 2 shards, then vary only the flow id: both
  // touched shards must eventually own it (the deterministic spread).
  Rng rng(13);
  for (int attempt = 0; attempt < 500; ++attempt) {
    const auto src = static_cast<VertexId>(
        rng.NextBounded(static_cast<std::uint64_t>(g.num_vertices())));
    const auto dst = static_cast<VertexId>(
        rng.NextBounded(static_cast<std::uint64_t>(g.num_vertices())));
    if (src == dst) continue;
    const auto path = graph::ShortestHopPath(g, src, dst);
    if (!path.has_value() || path->NumEdges() == 0) continue;
    traffic::Flow flow = MakeFlow(g, src, dst);
    if (ShardsTouched(partition, flow) < 2) continue;
    std::set<std::size_t> owners;
    for (std::uint64_t id = 0; id < 8; ++id) {
      owners.insert(OwnerShard(partition, flow, id));
    }
    EXPECT_GE(owners.size(), 2u);
    return;
  }
  FAIL() << "no cross-shard flow found in 500 attempts";
}

TEST(ShardPartitionTest, MethodNamesRoundTrip) {
  PartitionMethod method = PartitionMethod::kSpatial;
  EXPECT_TRUE(ParsePartitionMethod("bfs", &method));
  EXPECT_EQ(method, PartitionMethod::kBfs);
  EXPECT_TRUE(ParsePartitionMethod("spatial", &method));
  EXPECT_EQ(method, PartitionMethod::kSpatial);
  EXPECT_FALSE(ParsePartitionMethod("metis", &method));
  EXPECT_STREQ(PartitionMethodName(PartitionMethod::kBfs), "bfs");
  EXPECT_STREQ(PartitionMethodName(PartitionMethod::kSpatial), "spatial");
}

}  // namespace
}  // namespace tdmd::shard
