#include "core/exact_bnb.hpp"

#include <gtest/gtest.h>

#include "core/brute_force.hpp"
#include "core/gtp.hpp"
#include "test_util.hpp"

namespace tdmd::core {
namespace {

TEST(ExactBnbTest, PaperTreeOptimaMatchKnownValues) {
  Instance instance = test::PaperInstance();
  const double expected[] = {24.0, 16.5, 13.5, 12.0};
  for (std::size_t k = 1; k <= 4; ++k) {
    auto result = ExactBranchAndBound(instance, k);
    ASSERT_TRUE(result.has_value());
    EXPECT_DOUBLE_EQ(result->best.bandwidth, expected[k - 1]) << "k=" << k;
    EXPECT_TRUE(result->best.feasible);
    EXPECT_LE(result->best.deployment.size(), k);
  }
}

TEST(ExactBnbTest, InfeasibleBudgetReturnsNullopt) {
  Instance instance = test::PaperInstance();
  EXPECT_FALSE(ExactBranchAndBound(instance, 0).has_value());
}

TEST(ExactBnbTest, EmptyFlowSetZeroCost) {
  const graph::Tree tree = test::PaperTree();
  Instance instance = MakeTreeInstance(tree, {}, 0.5);
  auto result = ExactBranchAndBound(instance, 2);
  ASSERT_TRUE(result.has_value());
  EXPECT_DOUBLE_EQ(result->best.bandwidth, 0.0);
}

class BnbMatchesBruteForce : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(BnbMatchesBruteForce, OnRandomGeneralInstances) {
  Rng rng(GetParam());
  const auto size = static_cast<VertexId>(rng.NextInt(8, 16));
  const double lambda = rng.NextDouble(0.0, 0.9);
  Instance instance = test::MakeRandomGeneralCase(
      size, lambda, static_cast<std::size_t>(rng.NextInt(5, 12)), rng);
  for (std::size_t k : {2u, 3u, 4u}) {
    const auto bnb = ExactBranchAndBound(instance, k);
    const auto brute = BruteForceOptimal(instance, k);
    ASSERT_EQ(bnb.has_value(), brute.has_value());
    if (!bnb.has_value()) continue;
    EXPECT_NEAR(bnb->best.bandwidth, brute->best.bandwidth, 1e-9)
        << "size=" << size << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BnbMatchesBruteForce,
                         ::testing::Range<std::uint64_t>(1, 21));

TEST(ExactBnbTest, PruningBeatsExhaustiveEnumeration) {
  Rng rng(99);
  Instance instance = test::MakeRandomGeneralCase(16, 0.5, 10, rng);
  const std::size_t k = 5;
  const auto bnb = ExactBranchAndBound(instance, k);
  const auto brute = BruteForceOptimal(instance, k);
  ASSERT_TRUE(bnb.has_value() && brute.has_value());
  EXPECT_NEAR(bnb->best.bandwidth, brute->best.bandwidth, 1e-9);
  // The submodular bound + GTP warm start must beat the full
  // C(16,0..5) = 6885 enumeration by a clear margin.
  EXPECT_LT(bnb->nodes_explored, brute->evaluated / 2)
      << "explored " << bnb->nodes_explored << " of "
      << brute->evaluated;
  EXPECT_GT(bnb->nodes_pruned, 0u);
}

TEST(ExactBnbTest, NeverWorseThanGreedy) {
  for (std::uint64_t seed : {7ULL, 21ULL, 63ULL}) {
    Rng rng(seed);
    Instance instance = test::MakeRandomGeneralCase(14, 0.4, 8, rng);
    GtpOptions options;
    options.max_middleboxes = 4;
    options.feasibility_aware = true;
    const PlacementResult greedy = Gtp(instance, options);
    const auto exact = ExactBranchAndBound(instance, 4);
    if (greedy.feasible) {
      ASSERT_TRUE(exact.has_value());
      EXPECT_LE(exact->best.bandwidth, greedy.bandwidth + 1e-9);
    }
  }
}

TEST(ExactBnbDeathTest, GuardsLargeInstances) {
  Rng rng(1);
  Instance instance = test::MakeRandomGeneralCase(35, 0.5, 5, rng);
  EXPECT_DEATH(ExactBranchAndBound(instance, 5), "up to 30");
}

}  // namespace
}  // namespace tdmd::core
